//! Graph generators: the random models analyzed in the paper (Section 1.1.4) and
//! structured families used throughout its proofs and our experiments.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Path on `n` vertices (`P_n`).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges)
}

/// Cycle on `n` vertices (`C_n`, requires `n >= 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges)
}

/// Star `K_{1,k}`: one center (vertex 0) adjacent to `k` leaves.
pub fn star(k: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (1..=k).map(|i| (0, i)).collect();
    Graph::from_edges(k + 1, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Two-dimensional grid graph with `rows × cols` vertices.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    g
}

/// Disjoint union of two graphs (vertices of `b` are shifted by `|V(a)|`).
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let offset = a.num_vertices();
    let mut g = Graph::new(offset + b.num_vertices());
    for (u, v) in a.edges() {
        g.add_edge(u, v);
    }
    for (u, v) in b.edges() {
        g.add_edge(u + offset, v + offset);
    }
    g
}

/// A forest of `num_stars` disjoint stars `K_{1,star_size}` plus `isolated`
/// isolated vertices. Its `f_cc` is `num_stars + isolated` and its `Δ*` is
/// `star_size` (for `star_size ≥ 1`), making it the canonical family for the
/// error-versus-`Δ*` experiment (E3).
pub fn planted_star_forest(num_stars: usize, star_size: usize, isolated: usize) -> Graph {
    let n = num_stars * (star_size + 1) + isolated;
    let mut g = Graph::new(n);
    for s in 0..num_stars {
        let center = s * (star_size + 1);
        for leaf in 1..=star_size {
            g.add_edge(center, center + leaf);
        }
    }
    g
}

/// Connected caveman-style graph: `num_cliques` cliques of size `clique_size`, with
/// consecutive cliques joined by a single edge.
pub fn caveman(num_cliques: usize, clique_size: usize) -> Graph {
    assert!(clique_size >= 1);
    let n = num_cliques * clique_size;
    let mut g = Graph::new(n);
    for c in 0..num_cliques {
        let base = c * clique_size;
        for u in 0..clique_size {
            for v in (u + 1)..clique_size {
                g.add_edge(base + u, base + v);
            }
        }
        if c + 1 < num_cliques {
            g.add_edge(base + clique_size - 1, base + clique_size);
        }
    }
    g
}

/// Erdős–Rényi random graph `G(n, p)`: each of the `n·(n-1)/2` possible edges is
/// present independently with probability `p`.
///
/// Uses the standard geometric skipping technique, so the cost is proportional to
/// the number of generated edges rather than `n²` when `p` is small.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = Graph::new(n);
    if n < 2 || p == 0.0 {
        return g;
    }
    if p >= 1.0 {
        return complete(n);
    }
    // Iterate over pairs in lexicographic order, skipping ahead by geometric jumps.
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            g.add_edge(w as usize, v);
        }
    }
    g
}

/// Streaming counterpart of [`erdos_renyi`]: yields the same edges (same
/// geometric-skipping walk, same RNG consumption) as `(u32, u32)` pairs
/// without building a [`Graph`].
///
/// Takes the RNG by value so the stream can be re-created from the same seed —
/// exactly what [`CsrGraph::from_edge_stream`](crate::csr::CsrGraph::from_edge_stream)
/// needs for its two counting passes:
///
/// ```
/// use ccdp_graph::{generators, CsrGraph};
/// use rand::{rngs::StdRng, SeedableRng};
/// let csr = CsrGraph::from_edge_stream(1000, || {
///     generators::erdos_renyi_edges(1000, 1.05 / 1000.0, StdRng::seed_from_u64(7))
/// });
/// let g = generators::erdos_renyi(1000, 1.05 / 1000.0, &mut StdRng::seed_from_u64(7));
/// assert!(csr.matches_graph(&g));
/// ```
pub fn erdos_renyi_edges<R: Rng>(n: usize, p: f64, rng: R) -> ErdosRenyiEdges<R> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    ErdosRenyiEdges {
        n,
        dense: p >= 1.0,
        log_q: if p > 0.0 && p < 1.0 {
            (1.0 - p).ln()
        } else {
            0.0
        },
        exhausted: n < 2 || p == 0.0,
        v: 1,
        w: -1,
        rng,
    }
}

/// Iterator state for [`erdos_renyi_edges`].
pub struct ErdosRenyiEdges<R> {
    n: usize,
    dense: bool,
    log_q: f64,
    exhausted: bool,
    v: usize,
    w: i64,
    rng: R,
}

impl<R: Rng> Iterator for ErdosRenyiEdges<R> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.exhausted {
            return None;
        }
        if self.dense {
            // p >= 1: every pair, lexicographic, matching `complete(n)`.
            self.w += 1;
            if self.w >= self.v as i64 {
                self.w = 0;
                self.v += 1;
                if self.v >= self.n {
                    self.exhausted = true;
                    return None;
                }
            }
            return Some((self.w as u32, self.v as u32));
        }
        // Same lexicographic (w, v) walk with geometric jumps as `erdos_renyi`.
        let r: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / self.log_q).floor() as i64;
        self.w += 1 + skip;
        while self.w >= self.v as i64 && self.v < self.n {
            self.w -= self.v as i64;
            self.v += 1;
        }
        if self.v >= self.n {
            self.exhausted = true;
            return None;
        }
        Some((self.w as u32, self.v as u32))
    }
}

/// Random geometric graph: `n` points placed uniformly at random in the unit
/// square, with an edge whenever the Euclidean distance is at most `radius`.
///
/// Uses a grid of cells of side `radius` so the expected cost is near-linear for
/// sparse regimes. Geometric graphs have no induced 6-star (Section 1.1.4), hence
/// `Δ* ≤ 6`.
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    assert!(radius > 0.0 && radius <= 1.0, "radius must lie in (0, 1]");
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    geometric_from_points(&points, radius)
}

/// Geometric graph over explicitly given points in the unit square.
pub fn geometric_from_points(points: &[(f64, f64)], radius: f64) -> Graph {
    let n = points.len();
    let mut g = Graph::new(n);
    if n == 0 {
        return g;
    }
    let cells_per_side = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |x: f64| ((x * cells_per_side as f64) as usize).min(cells_per_side - 1);
    let mut buckets: std::collections::HashMap<(usize, usize), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &(x, y)) in points.iter().enumerate() {
        buckets.entry((cell_of(x), cell_of(y))).or_default().push(i);
    }
    let r2 = radius * radius;
    for (&(cx, cy), members) in &buckets {
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 {
                    continue;
                }
                if let Some(other) = buckets.get(&(nx as usize, ny as usize)) {
                    for &i in members {
                        for &j in other {
                            if i < j {
                                let (xi, yi) = points[i];
                                let (xj, yj) = points[j];
                                let d2 = (xi - xj).powi(2) + (yi - yj).powi(2);
                                if d2 <= r2 {
                                    g.add_edge(i, j);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    g
}

/// Barabási–Albert preferential-attachment graph: starts from a clique on
/// `m` vertices and attaches each new vertex to `m` existing vertices chosen with
/// probability proportional to their degree.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut g = complete(m);
    // Persistent sampling pool: every edge contributes both endpoints once, so
    // a uniform draw from the pool is a degree-proportional vertex draw. The
    // pool grows incrementally as edges are added — O(1) amortized per edge —
    // replacing the old per-vertex rebuild of the full endpoint list, which
    // made generation quadratic in n and unusable at bench scale.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * (m * (n - m) + m * (m - 1) / 2));
    for (a, b) in g.edges() {
        endpoints.push(a);
        endpoints.push(b);
    }
    let mut targets = std::collections::BTreeSet::new();
    for _ in m..n {
        let v = g.add_vertex();
        targets.clear();
        let mut guard = 0;
        // A 10% uniform mix keeps isolated-ish vertices reachable; the guard
        // bounds the rejection loop on pathological draws.
        while targets.len() < m && guard < 50 * m {
            guard += 1;
            let t = if endpoints.is_empty() || rng.gen_bool(0.1) {
                rng.gen_range(0..v)
            } else {
                *endpoints.choose(rng).expect("non-empty")
            };
            targets.insert(t);
        }
        for &t in &targets {
            if g.add_edge(v, t) {
                endpoints.push(v);
                endpoints.push(t);
            }
        }
    }
    g
}

/// Stochastic block model with the given community sizes, within-community edge
/// probability `p_in` and across-community probability `p_out`.
pub fn stochastic_block_model<R: Rng + ?Sized>(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Graph {
    let n: usize = sizes.iter().sum();
    let mut block = Vec::with_capacity(n);
    for (b, &s) in sizes.iter().enumerate() {
        block.extend(std::iter::repeat_n(b, s));
    }
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block[u] == block[v] { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_properties() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_connected_components(), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(0).num_vertices(), 0);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_properties() {
        let g = star(7);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.degree(0), 7);
    }

    #[test]
    fn complete_properties() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn grid_properties() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.num_connected_components(), 1);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn disjoint_union_adds_components() {
        let g = disjoint_union(&path(3), &cycle(4));
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 2 + 4);
        assert_eq!(g.num_connected_components(), 2);
    }

    #[test]
    fn planted_star_forest_statistics() {
        let g = planted_star_forest(4, 3, 5);
        assert_eq!(g.num_vertices(), 4 * 4 + 5);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.num_connected_components(), 4 + 5);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn caveman_is_connected() {
        let g = caveman(4, 5);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_connected_components(), 1);
    }

    #[test]
    fn erdos_renyi_edge_count_is_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400;
        let p = 0.02;
        let g = erdos_renyi(n, p, &mut rng);
        assert!(g.check_invariants().is_ok());
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 5.0 * expected.sqrt() + 10.0,
            "edge count {m} too far from expectation {expected}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 45);
        assert_eq!(erdos_renyi(1, 0.5, &mut rng).num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_edge_stream_matches_graph_builder() {
        for (n, p, seed) in [
            (0usize, 0.5, 1u64),
            (1, 0.5, 2),
            (50, 0.0, 3),
            (10, 1.0, 4),
            (300, 0.02, 5),
            (1000, 1.05 / 1000.0, 6),
        ] {
            let g = erdos_renyi(n, p, &mut StdRng::seed_from_u64(seed));
            let stream: Vec<(u32, u32)> =
                erdos_renyi_edges(n, p, StdRng::seed_from_u64(seed)).collect();
            let expected: Vec<(u32, u32)> = g
                .edge_vec()
                .iter()
                .map(|&(u, v)| (u as u32, v as u32))
                .collect();
            let mut sorted = stream.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, expected, "n={n} p={p}");
            // Re-playable: the same seed yields the same stream.
            let replay: Vec<(u32, u32)> =
                erdos_renyi_edges(n, p, StdRng::seed_from_u64(seed)).collect();
            assert_eq!(stream, replay);
            // And the CSR two-pass build lands on the same arena.
            let csr = crate::csr::CsrGraph::from_edge_stream(n, || {
                erdos_renyi_edges(n, p, StdRng::seed_from_u64(seed))
            });
            assert!(csr.matches_graph(&g), "n={n} p={p}");
        }
    }

    #[test]
    fn geometric_graph_matches_naive_construction() {
        let mut rng = StdRng::seed_from_u64(9);
        let points: Vec<(f64, f64)> = (0..150).map(|_| (rng.gen(), rng.gen())).collect();
        let r = 0.17;
        let fast = geometric_from_points(&points, r);
        // Naive O(n²) cross-check.
        let mut slow = Graph::new(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let d2 = (points[i].0 - points[j].0).powi(2) + (points[i].1 - points[j].1).powi(2);
                if d2 <= r * r {
                    slow.add_edge(i, j);
                }
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn barabasi_albert_is_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = barabasi_albert(100, 2, &mut rng);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_connected_components(), 1);
        assert!(g.num_edges() >= 99);
    }

    #[test]
    fn barabasi_albert_scales_and_skews() {
        // The incremental pool makes 20k vertices cheap even unoptimized; the
        // resulting degree distribution must be heavily right-skewed (hubs),
        // unlike ER at the same density.
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let g = barabasi_albert(n, 3, &mut rng);
        assert_eq!(g.num_vertices(), n);
        assert_eq!(g.num_connected_components(), 1);
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(
            g.max_degree() as f64 > 10.0 * avg,
            "expected a hub: max degree {} vs average {avg:.2}",
            g.max_degree()
        );
    }

    #[test]
    fn sbm_block_density() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = stochastic_block_model(&[30, 30], 0.5, 0.01, &mut rng);
        assert_eq!(g.num_vertices(), 60);
        let within = g.edges().filter(|&(u, v)| (u < 30) == (v < 30)).count();
        let across = g.num_edges() - within;
        assert!(within > across, "within-block edges should dominate");
    }
}
