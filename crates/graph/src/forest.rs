//! Spanning forests, degree-bounded spanning forests and the local-repair
//! procedure of the paper.
//!
//! The key combinatorial fact (Lemma 1.8) is: *a graph with no induced Δ-star has a
//! spanning Δ-forest*. Its proof is constructive; [`bounded_degree_spanning_forest`]
//! implements that construction, including the sequence of local repairs described
//! in Algorithm 3 and illustrated by Figure 1 of the paper.
//!
//! The quantity `Δ*` — the smallest possible maximum degree of a spanning forest —
//! parameterizes the accuracy of the paper's algorithm (Theorem 1.3). Computing it
//! exactly is NP-hard in general (it contains the minimum-degree spanning tree
//! problem), so this module exposes:
//!
//! * [`delta_star_upper_bound`]: the constructive upper bound obtained by running
//!   the local-repair procedure with increasing Δ (always ≤ `s(G) + 1` by
//!   Lemma 1.6, and never worse than the maximum degree),
//! * [`delta_star_exact`]: an exact branch-and-bound search intended for small
//!   graphs, used by tests and the optimality experiments.

use crate::csr::CsrGraph;
use crate::graph::Graph;
use crate::unionfind::UnionFind;

/// The minimal graph interface the constructive forest machinery needs, so the
/// same code runs on the adjacency-list [`Graph`] and the flat [`CsrGraph`]
/// arena without duplicating the repair logic. Private by design: the public
/// surface stays the concrete `*_csr` / `Graph` entry points.
trait ForestHost {
    fn num_vertices(&self) -> usize;
    fn degree(&self, v: usize) -> usize;
    fn has_edge(&self, u: usize, v: usize) -> bool;
    /// Calls `f` for every neighbor of `v`, in ascending order.
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize));
    /// First neighbor of `v` (in ascending order) satisfying `pred`.
    fn first_neighbor_where(&self, v: usize, pred: &mut dyn FnMut(usize) -> bool) -> Option<usize>;
}

impl ForestHost for Graph {
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }
    fn degree(&self, v: usize) -> usize {
        Graph::degree(self, v)
    }
    fn has_edge(&self, u: usize, v: usize) -> bool {
        Graph::has_edge(self, u, v)
    }
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for &w in self.neighbors(v) {
            f(w);
        }
    }
    fn first_neighbor_where(&self, v: usize, pred: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        self.neighbors(v).iter().copied().find(|&w| pred(w))
    }
}

impl ForestHost for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }
    fn degree(&self, v: usize) -> usize {
        CsrGraph::degree(self, v)
    }
    fn has_edge(&self, u: usize, v: usize) -> bool {
        CsrGraph::has_edge(self, u, v)
    }
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for &w in self.neighbors(v) {
            f(w as usize);
        }
    }
    fn first_neighbor_where(&self, v: usize, pred: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        self.neighbors(v)
            .iter()
            .map(|&w| w as usize)
            .find(|&w| pred(w))
    }
}

/// A spanning forest of a host graph, stored as an explicit edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningForest {
    num_vertices: usize,
    edges: Vec<(usize, usize)>,
}

impl SpanningForest {
    /// Creates a forest over `num_vertices` vertices from an edge list.
    pub fn new(num_vertices: usize, edges: Vec<(usize, usize)>) -> Self {
        SpanningForest {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices of the host graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of forest edges (this is `f_sf(G)` when the forest spans `G`).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The forest edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of every vertex within the forest.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_vertices];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        deg
    }

    /// Maximum degree of the forest (0 if it has no edges).
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Converts the forest into a [`Graph`] on the same vertex set.
    pub fn to_graph(&self) -> Graph {
        Graph::from_edges(self.num_vertices, &self.edges)
    }

    /// Checks that this is a spanning forest of `g`: every edge belongs to `g`,
    /// the edge set is acyclic, and it connects exactly the components of `g`
    /// (i.e. it has `f_sf(g)` edges).
    pub fn is_spanning_forest_of(&self, g: &Graph) -> bool {
        if self.num_vertices != g.num_vertices() {
            return false;
        }
        let mut uf = UnionFind::new(self.num_vertices);
        for &(u, v) in &self.edges {
            if !g.has_edge(u, v) {
                return false;
            }
            if !uf.union(u, v) {
                return false; // cycle
            }
        }
        self.edges.len() == g.spanning_forest_size()
    }
}

/// A BFS spanning forest of `g` (one BFS tree per connected component).
pub fn bfs_spanning_forest(g: &Graph) -> SpanningForest {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    edges.push((u, v));
                    queue.push_back(v);
                }
            }
        }
    }
    SpanningForest::new(n, edges)
}

/// Adjacency-list view of a forest under construction, used by the local repair.
struct ForestBuilder {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl ForestBuilder {
    fn new(n: usize) -> Self {
        ForestBuilder {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    fn add_edge(&mut self, u: usize, v: usize) {
        debug_assert!(!self.adj[u].contains(&v));
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.num_edges += 1;
    }

    fn remove_edge(&mut self, u: usize, v: usize) {
        let pu = self.adj[u]
            .iter()
            .position(|&x| x == v)
            .expect("edge not present");
        self.adj[u].swap_remove(pu);
        let pv = self.adj[v]
            .iter()
            .position(|&x| x == u)
            .expect("edge not present");
        self.adj[v].swap_remove(pv);
        self.num_edges -= 1;
    }

    fn into_forest(self) -> SpanningForest {
        let n = self.adj.len();
        let mut edges = Vec::with_capacity(self.num_edges);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        SpanningForest::new(n, edges)
    }
}

/// Computes an elimination order for the constructive proof of Lemma 1.8:
/// repeatedly remove a vertex that is isolated in the remaining graph or a leaf of
/// a spanning forest of the remaining graph (such a vertex is never a cut vertex).
///
/// Returns the vertices in removal order together with a flag saying whether the
/// vertex was isolated in the remaining graph at the time of its removal.
///
/// Implementation: one BFS per component, removal order = reverse discovery
/// order. In any discovery-order prefix, the parent edges of the non-root
/// prefix vertices form a spanning forest of the induced prefix graph (every
/// parent precedes its child; distinct trees are distinct graph components),
/// and the last-discovered vertex has no children in the prefix, so it is a
/// leaf of that forest. A BFS root is removed last of its component, when all
/// its component-mates are gone, so it is isolated at removal time. This is
/// O(n + m) total, replacing the old leaf scan that rebuilt a BFS forest per
/// removal (Θ(n·(n+m)) on connected graphs).
fn elimination_order<H: ForestHost + ?Sized>(g: &H) -> Vec<(usize, bool)> {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if visited[s] {
            continue;
        }
        visited[s] = true;
        order.push((s, true)); // component root: isolated once removal reaches it
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            g.for_each_neighbor(u, &mut |w| {
                if !visited[w] {
                    visited[w] = true;
                    order.push((w, false));
                    queue.push_back(w);
                }
            });
        }
    }
    order.reverse();
    order
}

/// Constructs a spanning forest of `g` with maximum degree at most `delta`,
/// following the constructive proof of Lemma 1.8 (vertex-by-vertex insertion with
/// local repairs as in Algorithm 3).
///
/// Guaranteed to succeed whenever `g` has no induced `delta`-star
/// (`s(G) < delta`, see Lemma 1.7/1.8); it may also succeed on other graphs. When a
/// repair step cannot find the required adjacent pair of neighbors, `None` is
/// returned.
///
/// # Panics
/// Panics if `delta == 0`.
pub fn bounded_degree_spanning_forest(g: &Graph, delta: usize) -> Option<SpanningForest> {
    assert!(delta >= 1, "delta must be at least 1");
    capacity_bounded_spanning_forest(g, &vec![delta; g.num_vertices()])
}

/// Heterogeneous-capacity generalization of [`bounded_degree_spanning_forest`]:
/// looks for a spanning forest in which every vertex `v` has degree at most
/// `caps[v]`, by the same insertion-with-local-repairs procedure.
///
/// With uniform capacities this is exactly the constructive proof of
/// Lemma 1.8 (guaranteed to succeed when `G` has no induced Δ-star). With
/// non-uniform capacities no such guarantee exists, so this is a *certifying
/// heuristic*: a returned forest always satisfies the capacities (callers get
/// a genuine certificate), while `None` means the procedure got stuck, not
/// that no such forest exists. The combinatorial polytope solver uses it to
/// certify rank-bound optimality on peeled cores whose residual capacities
/// are no longer uniform.
///
/// # Panics
/// Panics if `caps.len() != g.num_vertices()`.
pub fn capacity_bounded_spanning_forest(g: &Graph, caps: &[usize]) -> Option<SpanningForest> {
    let result = capacity_bounded_forest_host(g, caps);
    if let Some(f) = &result {
        debug_assert!(
            f.is_spanning_forest_of(g),
            "local repair must preserve the spanning forest"
        );
    }
    result
}

/// [`capacity_bounded_spanning_forest`] on the flat CSR arena. Neighbor
/// iteration order matches the adjacency path (both sorted), so on the same
/// graph both entry points construct the identical forest.
pub fn capacity_bounded_spanning_forest_csr(
    g: &CsrGraph,
    caps: &[usize],
) -> Option<SpanningForest> {
    capacity_bounded_forest_host(g, caps)
}

/// [`bounded_degree_spanning_forest`] on the flat CSR arena.
///
/// # Panics
/// Panics if `delta == 0`.
pub fn bounded_degree_spanning_forest_csr(g: &CsrGraph, delta: usize) -> Option<SpanningForest> {
    assert!(delta >= 1, "delta must be at least 1");
    capacity_bounded_spanning_forest_csr(g, &vec![delta; g.num_vertices()])
}

fn capacity_bounded_forest_host<H: ForestHost + ?Sized>(
    g: &H,
    caps: &[usize],
) -> Option<SpanningForest> {
    let n = g.num_vertices();
    assert_eq!(caps.len(), n, "capacity vector length mismatch");
    if n == 0 {
        return Some(SpanningForest::new(0, Vec::new()));
    }
    // A vertex with capacity 0 cannot take any forest edge; bail out early
    // unless it is isolated.
    if (0..n).any(|v| caps[v] == 0 && g.degree(v) > 0) {
        return None;
    }

    let order = elimination_order(g);
    let mut active = vec![false; n];
    let mut forest = ForestBuilder::new(n);

    // Insert vertices in reverse removal order; `active` is the vertex set of the
    // current induced subgraph G_i.
    for &(v0, was_isolated) in order.iter().rev() {
        active[v0] = true;
        if was_isolated {
            continue;
        }
        // v0 had at least one neighbor among the currently active vertices, and is
        // not a cut vertex of the current induced subgraph (it was a forest leaf).
        let v1 = g
            .first_neighbor_where(v0, &mut |w| active[w])
            .expect("non-isolated vertex must have an active neighbor");
        forest.add_edge(v0, v1);

        // Local repair loop (Algorithm 3): only the most recently touched vertex can
        // exceed its bound, and the repaired vertices form a path, so at most n
        // repairs can happen per insertion.
        let mut prev = v0;
        let mut cur = v1;
        let mut repairs = 0usize;
        while forest.degree(cur) > caps[cur] {
            repairs += 1;
            if repairs > n {
                return None;
            }
            // The forest-neighbors of `cur`, excluding `prev`.
            let candidates: Vec<usize> = forest.adj[cur]
                .iter()
                .copied()
                .filter(|&w| w != prev)
                .collect();
            debug_assert!(candidates.len() >= caps[cur]);
            // Find a pair (a, b) of candidates adjacent in G, preferring a
            // replacement endpoint `a` with slack capacity so the repair
            // path terminates sooner. With uniform capacities, failure here
            // means G has an induced Δ-star centered at `cur` and the caller
            // asked for an infeasible Δ.
            let mut found: Option<(usize, usize)> = None;
            'outer: for (i, &a) in candidates.iter().enumerate() {
                for &b in candidates.iter().skip(i + 1) {
                    if g.has_edge(a, b) {
                        let (a, b) = if forest.degree(b) < forest.degree(a) || caps[b] > caps[a] {
                            (b, a)
                        } else {
                            (a, b)
                        };
                        if found.is_none() || forest.degree(a) < caps[a] {
                            found = Some((a, b));
                        }
                        if forest.degree(a) < caps[a] {
                            break 'outer;
                        }
                    }
                }
            }
            let (a, b) = found?;
            // Replace (cur, b) by (a, b); the degree of `cur` drops below its
            // capacity and only `a` may now exceed its own.
            forest.remove_edge(cur, b);
            forest.add_edge(a, b);
            prev = cur;
            cur = a;
        }
    }

    let result = forest.into_forest();
    #[cfg(debug_assertions)]
    {
        // Generic invariant check: forest edges belong to the host, are
        // acyclic, and the edge count matches n − #components (= #roots).
        let mut uf = UnionFind::new(n);
        for &(u, v) in result.edges() {
            debug_assert!(g.has_edge(u, v), "forest edge ({u},{v}) not in host");
            debug_assert!(uf.union(u, v), "forest edge ({u},{v}) closes a cycle");
        }
        let roots = order.iter().filter(|&&(_, iso)| iso).count();
        debug_assert_eq!(result.num_edges(), n - roots);
    }
    let degrees = result.degrees();
    if (0..n).all(|v| degrees[v] <= caps[v]) {
        Some(result)
    } else {
        None
    }
}

/// Smallest `Δ` for which the constructive procedure of Lemma 1.8 returns a
/// spanning Δ-forest. This is an upper bound on `Δ*` and, by Lemma 1.6, at most
/// `s(G) + 1`.
///
/// Returns 1 for graphs with no edges (every graph has a spanning 1-forest when it
/// has at most one edge per component).
pub fn delta_star_upper_bound(g: &Graph) -> usize {
    if g.has_no_edges() {
        return 1;
    }
    let max_deg = g.max_degree();
    for delta in 1..=max_deg {
        if bounded_degree_spanning_forest(g, delta).is_some() {
            return delta;
        }
    }
    // A BFS forest always has degree at most the maximum degree.
    max_deg
}

/// Exact `Δ*`: the smallest possible maximum degree of a spanning forest of `g`.
///
/// Uses backtracking over forest edges and is intended for small graphs; returns
/// `None` if the search budget (`node_limit` recursive calls) is exceeded.
pub fn delta_star_exact(g: &Graph, node_limit: usize) -> Option<usize> {
    if g.has_no_edges() {
        return Some(if g.num_vertices() == 0 { 0 } else { 1 });
    }
    let target_edges = g.spanning_forest_size();
    let max_deg = g.max_degree();
    for delta in 1..=max_deg {
        let mut budget = node_limit;
        match has_spanning_forest_with_degree(g, delta, target_edges, &mut budget) {
            Some(true) => return Some(delta),
            Some(false) => continue,
            None => return None,
        }
    }
    Some(max_deg)
}

/// Backtracking search: does `g` have a spanning forest with `target_edges` edges
/// and maximum degree ≤ `delta`? Returns `None` when the budget is exhausted.
fn has_spanning_forest_with_degree(
    g: &Graph,
    delta: usize,
    target_edges: usize,
    budget: &mut usize,
) -> Option<bool> {
    let edges = g.edge_vec();
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    let mut deg = vec![0usize; n];
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        edges: &[(usize, usize)],
        idx: usize,
        chosen: usize,
        target: usize,
        delta: usize,
        uf: &mut UnionFind,
        deg: &mut [usize],
        budget: &mut usize,
    ) -> Option<bool> {
        if chosen == target {
            return Some(true);
        }
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        // Not enough edges left to reach the target.
        if idx >= edges.len() || edges.len() - idx < target - chosen {
            return Some(false);
        }
        let (u, v) = edges[idx];
        // Branch 1: take the edge if it keeps the forest valid.
        if deg[u] < delta && deg[v] < delta {
            let mut uf2 = uf.clone();
            if uf2.union(u, v) {
                deg[u] += 1;
                deg[v] += 1;
                let r = recurse(
                    edges,
                    idx + 1,
                    chosen + 1,
                    target,
                    delta,
                    &mut uf2,
                    deg,
                    budget,
                );
                deg[u] -= 1;
                deg[v] -= 1;
                match r {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
        }
        // Branch 2: skip the edge.
        recurse(edges, idx + 1, chosen, target, delta, uf, deg, budget)
    }
    recurse(&edges, 0, 0, target_edges, delta, &mut uf, &mut deg, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::stars::induced_star_number;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_forest_of_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = bfs_spanning_forest(&g);
        assert_eq!(f.num_edges(), 3);
        assert!(f.is_spanning_forest_of(&g));
        assert_eq!(f.max_degree(), 2);
    }

    #[test]
    fn bfs_forest_of_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let f = bfs_spanning_forest(&g);
        assert_eq!(f.num_edges(), g.spanning_forest_size());
        assert!(f.is_spanning_forest_of(&g));
    }

    #[test]
    fn spanning_forest_validation_rejects_cycles_and_foreign_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let cycle = SpanningForest::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert!(!cycle.is_spanning_forest_of(&g));
        let foreign = SpanningForest::new(3, vec![(0, 1), (1, 2)]);
        assert!(foreign.is_spanning_forest_of(&g));
        let h = Graph::from_edges(3, &[(0, 1)]);
        assert!(!foreign.is_spanning_forest_of(&h));
    }

    #[test]
    fn degrees_of_star_forest() {
        let f = SpanningForest::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(f.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(f.max_degree(), 3);
    }

    #[test]
    fn bounded_forest_on_triangle() {
        // A triangle has no induced 2-star, so it must have a spanning 2-forest.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(induced_star_number(&g).value(), 1);
        let f = bounded_degree_spanning_forest(&g, 2).expect("triangle has a spanning path");
        assert!(f.is_spanning_forest_of(&g));
        assert!(f.max_degree() <= 2);
    }

    #[test]
    fn bounded_forest_on_complete_graph() {
        // K_n has no induced 2-star, so a Hamiltonian path (spanning 2-forest) exists.
        let g = generators::complete(7);
        let f =
            bounded_degree_spanning_forest(&g, 2).expect("complete graph has a Hamiltonian path");
        assert!(f.is_spanning_forest_of(&g));
        assert!(f.max_degree() <= 2);
    }

    #[test]
    fn star_requires_full_degree() {
        // K_{1,4}: the only spanning tree is the star itself.
        let g = generators::star(4);
        assert!(bounded_degree_spanning_forest(&g, 3).is_none());
        let f = bounded_degree_spanning_forest(&g, 4).unwrap();
        assert_eq!(f.max_degree(), 4);
        assert_eq!(delta_star_exact(&g, 1 << 20), Some(4));
        assert_eq!(delta_star_upper_bound(&g), 4);
    }

    #[test]
    fn figure_1_style_local_repair() {
        // A wheel-like configuration where inserting the last vertex forces a
        // repair, mirroring Figure 1: center c adjacent to a,b,d,e with (a,b) in G.
        let mut g = generators::complete(5); // no induced 2-stars anywhere
        g.add_vertex();
        g.add_edge(5, 0);
        let f = bounded_degree_spanning_forest(&g, 2);
        // s(G) = 2 here because vertex 5 and a non-neighbor form an induced 2-star
        // at 0; so only Δ = 3 is guaranteed, but Δ=2 may still succeed. Either way
        // Δ=3 must succeed.
        if let Some(f) = f {
            assert!(f.is_spanning_forest_of(&g));
            assert!(f.max_degree() <= 2);
        }
        let f3 = bounded_degree_spanning_forest(&g, 3).expect("s(G)=2 < 3 guarantees success");
        assert!(f3.is_spanning_forest_of(&g));
        assert!(f3.max_degree() <= 3);
    }

    #[test]
    fn lemma_1_8_on_random_graphs() {
        // For random graphs: if s(G) < Δ then the constructive procedure succeeds.
        let mut rng = StdRng::seed_from_u64(7);
        for n in [6, 10, 14] {
            for p in [0.15, 0.3, 0.6] {
                let g = generators::erdos_renyi(n, p, &mut rng);
                let s = induced_star_number(&g).value();
                let delta = s + 1;
                let f = bounded_degree_spanning_forest(&g, delta.max(1))
                    .expect("Lemma 1.8: no induced Δ-star implies spanning Δ-forest");
                assert!(f.is_spanning_forest_of(&g));
                assert!(f.max_degree() <= delta.max(1));
            }
        }
    }

    #[test]
    fn delta_star_exact_on_known_graphs() {
        let path = generators::path(6);
        assert_eq!(delta_star_exact(&path, 1 << 20), Some(2));
        let star = generators::star(5);
        assert_eq!(delta_star_exact(&star, 1 << 20), Some(5));
        let cycle = generators::cycle(5);
        assert_eq!(delta_star_exact(&cycle, 1 << 20), Some(2));
        let complete = generators::complete(5);
        assert_eq!(delta_star_exact(&complete, 1 << 20), Some(2));
        let empty = Graph::new(4);
        assert_eq!(delta_star_exact(&empty, 1 << 20), Some(1));
    }

    #[test]
    fn upper_bound_is_at_least_exact_value() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let g = generators::erdos_renyi(8, 0.35, &mut rng);
            let exact = delta_star_exact(&g, 1 << 22).expect("small graph");
            let ub = delta_star_upper_bound(&g);
            assert!(ub >= exact, "upper bound {ub} below exact {exact}");
            // By Lemma 1.6 the bound from the constructive procedure is ≤ s(G)+1.
            assert!(ub <= induced_star_number(&g).value() + 1);
        }
    }

    #[test]
    fn csr_forest_matches_adjacency_forest() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [6, 12, 20] {
            for p in [0.1, 0.25, 0.5] {
                let g = generators::erdos_renyi(n, p, &mut rng);
                let csr = CsrGraph::from_graph(&g);
                for delta in 1..=4usize {
                    let a = bounded_degree_spanning_forest(&g, delta);
                    let b = bounded_degree_spanning_forest_csr(&csr, delta);
                    assert_eq!(a, b, "n={n} p={p} delta={delta}");
                }
                let caps: Vec<usize> = (0..n).map(|v| 1 + v % 3).collect();
                assert_eq!(
                    capacity_bounded_spanning_forest(&g, &caps),
                    capacity_bounded_spanning_forest_csr(&csr, &caps)
                );
            }
        }
    }

    #[test]
    fn elimination_order_removes_leaves_or_isolated() {
        // Re-verify the reverse-BFS order against the definition on random
        // graphs: at each step the removed vertex is isolated in the remaining
        // graph or a non-cut vertex with a neighbor remaining.
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let g = generators::erdos_renyi(14, 0.2, &mut rng);
            let order = elimination_order(&g);
            assert_eq!(order.len(), g.num_vertices());
            let mut remaining: Vec<usize> = g.vertices().collect();
            for &(v, was_isolated) in &order {
                let idx = remaining.iter().position(|&u| u == v).expect("in graph");
                let deg = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| remaining.contains(&w))
                    .count();
                assert_eq!(was_isolated, deg == 0, "isolation flag for {v}");
                if deg > 0 {
                    // Removing v must not increase the component count by more
                    // than the vanished vertex itself (v is not a cut vertex).
                    let (before, _) = crate::subgraph::induced_subgraph(&g, &remaining);
                    remaining.remove(idx);
                    let (after, _) = crate::subgraph::induced_subgraph(&g, &remaining);
                    assert_eq!(
                        crate::components::num_connected_components(&after),
                        crate::components::num_connected_components(&before) + deg.min(1) - 1,
                        "vertex {v} was a cut vertex"
                    );
                } else {
                    remaining.remove(idx);
                }
            }
        }
    }

    #[test]
    fn single_edge_graph() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let f = bounded_degree_spanning_forest(&g, 1).unwrap();
        assert_eq!(f.num_edges(), 1);
        assert_eq!(delta_star_exact(&g, 1000), Some(1));
        assert_eq!(delta_star_upper_bound(&g), 1);
    }
}
