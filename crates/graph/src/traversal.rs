//! Breadth-first / depth-first traversals and cut vertices (articulation points).

use crate::csr::CsrGraph;
use crate::graph::Graph;

/// Vertices reachable from `start`, in BFS order.
pub fn bfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.num_vertices()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Vertices reachable from `start`, in DFS preorder.
pub fn dfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.num_vertices()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        order.push(u);
        // Push in reverse so that smaller neighbors are visited first.
        for &v in g.neighbors(u).iter().rev() {
            if !visited[v] {
                stack.push(v);
            }
        }
    }
    order
}

/// [`bfs_order`] on the flat CSR arena — identical visit order (both neighbor
/// representations are sorted ascending).
pub fn bfs_order_csr(g: &CsrGraph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.num_vertices()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start as u32);
    while let Some(u) = queue.pop_front() {
        order.push(u as usize);
        for &v in g.neighbors(u as usize) {
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// [`dfs_order`] on the flat CSR arena — identical visit order.
pub fn dfs_order_csr(g: &CsrGraph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.num_vertices()];
    let mut order = Vec::new();
    let mut stack = vec![start as u32];
    while let Some(u) = stack.pop() {
        if visited[u as usize] {
            continue;
        }
        visited[u as usize] = true;
        order.push(u as usize);
        for &v in g.neighbors(u as usize).iter().rev() {
            if !visited[v as usize] {
                stack.push(v);
            }
        }
    }
    order
}

/// Cut vertices (articulation points) of the graph.
///
/// A vertex is a cut vertex if removing it (and its adjacent edges) increases the
/// number of connected components. Uses an iterative Tarjan low-link computation.
pub fn cut_vertices(g: &Graph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS with an explicit stack of (vertex, next-neighbor-index).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
            if *idx < g.degree(u) {
                let v = g.neighbors(u)[*idx];
                *idx += 1;
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    if u == root {
                        root_children += 1;
                    }
                    stack.push((v, 0));
                } else if v != parent[u] {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root] = true;
        }
    }
    (0..n).filter(|&v| is_cut[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::num_connected_components;
    use crate::subgraph::remove_vertex;

    #[test]
    fn bfs_visits_component() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let order = bfs_order(&g, 0);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 0);
        assert!(order.contains(&2));
        assert!(!order.contains(&3));
    }

    #[test]
    fn dfs_visits_component() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn csr_traversals_match_adjacency_traversals() {
        use crate::csr::CsrGraph;
        use crate::generators;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..5 {
            let g = generators::erdos_renyi(30, 0.1, &mut rng);
            let csr = CsrGraph::from_graph(&g);
            for start in 0..g.num_vertices() {
                assert_eq!(bfs_order(&g, start), bfs_order_csr(&csr, start));
                assert_eq!(dfs_order(&g, start), dfs_order_csr(&csr, start));
            }
        }
    }

    #[test]
    fn path_internal_vertices_are_cut() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(cut_vertices(&g), vec![1, 2]);
    }

    #[test]
    fn cycle_has_no_cut_vertices() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(cut_vertices(&g).is_empty());
    }

    #[test]
    fn star_center_is_the_only_cut_vertex() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(cut_vertices(&g), vec![0]);
    }

    #[test]
    fn cut_vertices_match_definition_by_removal() {
        // Cross-check against the definition on a hand-made graph.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (4, 6),
                (6, 7),
            ],
        );
        let cc = num_connected_components(&g);
        let expected: Vec<usize> = (0..g.num_vertices())
            .filter(|&v| {
                let (h, _) = remove_vertex(&g, v);
                num_connected_components(&h) > cc
            })
            .collect();
        assert_eq!(cut_vertices(&g), expected);
    }
}
