//! Linear-programming and polytope-solving substrate.
//!
//! The paper evaluates its Lipschitz extensions by maximizing `x(E)` over the
//! Δ-bounded forest polytope (Definition 3.1). This crate owns the whole
//! solver stack for that problem, organized in three layers:
//!
//! * [`solver`] — the pluggable [`PolytopeSolver`] trait with two exact
//!   backends: the default [`CombinatorialSolver`] (certified graph-algorithm
//!   reductions, LP only for the irreducible fractional core) and the
//!   reference [`SimplexSolver`] (no reductions; cutting planes paired with
//!   the column-generation bound).
//! * [`cutting_plane`] — constraint generation with the min-cut separation
//!   oracle, per-vertex degree capacities and warm-started re-solves.
//! * [`simplex`] / [`problem`] — the LP substrate: an incremental tableau
//!   simplex ([`IncrementalSimplex`]) whose basis survives across added cuts
//!   (dual-simplex repair), with Bland's anti-cycling rule, plus the
//!   container type [`LinearProgram`] for one-shot solves.

pub mod column_generation;
pub mod combinatorial;
pub mod cutting_plane;
pub mod micro;
pub mod problem;
pub mod simplex;
pub mod solver;

pub use combinatorial::CombinatorialSolver;
pub use cutting_plane::violated_forest_constraints;
pub use micro::{
    solve_partition, PartitionSolution, PartitionSolveStats, SolveOptions, DEDUP_MAX_VERTICES,
    MICRO_TINY_VERTICES,
};
pub use problem::{LinearProgram, LpError, LpSolution};
pub use simplex::IncrementalSimplex;
pub use solver::{PolytopeError, PolytopeSolution, PolytopeSolver, SimplexSolver, SolverBackend};
