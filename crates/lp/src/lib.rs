//! Linear-programming substrate.
//!
//! The paper evaluates its Lipschitz extensions by maximizing `x(E)` over the
//! Δ-bounded forest polytope (Definition 3.1). The polytope has exponentially many
//! constraints, so the core crate solves it by constraint generation: repeatedly
//! solve a relaxation with the currently known constraints, then ask a separation
//! oracle for a violated forest constraint. This crate provides the relaxation
//! solver: a dense primal simplex for problems of the form
//!
//! ```text
//! maximize cᵀx   subject to   Ax ≤ b,  x ≥ 0,  b ≥ 0
//! ```
//!
//! which is exactly the shape of every relaxation we generate (all right-hand
//! sides are positive), so a basic feasible solution is always available and no
//! two-phase method is needed. Rows can be added incrementally between solves.

pub mod problem;
pub mod simplex;

pub use problem::{LinearProgram, LpError, LpSolution};
