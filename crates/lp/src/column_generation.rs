//! Dantzig–Wolfe column generation for the Δ-bounded forest polytope, and
//! the combined dual-bound engine used by the combinatorial backend.
//!
//! The forest polytope is integral: it is exactly the convex hull of the
//! indicator vectors of forests. Maximizing `x(E)` over it intersected with
//! degree capacities is therefore the small LP
//!
//! ```text
//! max Σ_F λ_F |F|   s.t.   Σ_F λ_F deg_F(v) ≤ cap_v  (∀v),
//!                          Σ_F λ_F ≤ 1,   λ ≥ 0,
//! ```
//!
//! over one variable per *forest* — exponentially many, but handled by
//! column generation: the master LP only ever holds the forests generated so
//! far, and the pricing problem "find the forest of maximum reduced cost
//! `Σ_{e=(u,v) ∈ F} (1 − y_u − y_v) − μ`" is a maximum-weight forest, solved
//! exactly by Kruskal's greedy over the graphic matroid. When no forest
//! prices positive, LP duality certifies the master optimum over the *whole*
//! polytope.
//!
//! Column generation and cutting planes fail on complementary regimes:
//!
//! * when the optimum sits on the massively symmetric rank-bound face
//!   (supercritical Erdős–Rényi cores), cutting planes stall fencing
//!   exponentially many cycle-heavy integral points, while a handful of
//!   mixed forest columns reach the bound immediately;
//! * when the optimum is fractional and below the rank bound, cuts bind and
//!   converge quickly, while column generation tails off.
//!
//! Each engine also produces a valid bound at every step — the master value
//! is a **lower** bound (its solution is a feasible point), a fresh
//! relaxation solve an **upper** bound — so [`solve_component_with_caps`]
//! interleaves the two, cost-balanced by pivots spent, and stops as soon as
//! either engine terminates exactly or the bounds meet.

use crate::cutting_plane::CuttingPlaneState;
use crate::simplex::IncrementalSimplex;
use crate::solver::{PolytopeError, PolytopeSolution};
use ccdp_graph::unionfind::UnionFind;
use ccdp_graph::Graph;

/// A generated forest prices positive only above this threshold; on
/// termination the master value is within this of the true optimum.
const PRICE_TOL: f64 = 1e-7;

/// Bounds within this of each other certify the current feasible point.
const GAP_TOL: f64 = 1e-6;

/// Hard bound on combined engine steps (a stall backstop far above need).
const MAX_STEPS: usize = 6000;

/// Per-round cut budget of the embedded cutting-plane engine.
const CUTS_PER_ROUND: usize = 64;

/// Stepwise column generation over forests for one connected component with
/// per-vertex degree capacities.
struct ColumnGenState {
    edges: Vec<(usize, usize)>,
    caps: Vec<f64>,
    /// Generated forests (sorted edge-index lists)…
    columns: Vec<Vec<usize>>,
    /// …with their degree vectors, cached at generation time.
    column_degrees: Vec<Vec<(usize, f64)>>,
    seen: std::collections::HashSet<Vec<usize>>,
    /// Best feasible value proven so far (master optimum).
    lower_bound: f64,
    /// Feasible point attaining `lower_bound`.
    best_point: Vec<f64>,
    lp_iterations: usize,
    lp_solves: usize,
    /// Set when pricing certifies optimality of the master.
    priced_out: bool,
    /// Set when pricing re-proposes an existing column (numerically stuck);
    /// the engine stops stepping but its bounds remain valid.
    stuck: bool,
}

impl ColumnGenState {
    fn new(g: &Graph, caps: &[f64]) -> Self {
        ColumnGenState {
            edges: g.edge_vec(),
            caps: caps.to_vec(),
            columns: Vec::new(),
            column_degrees: Vec::new(),
            seen: std::collections::HashSet::new(),
            lower_bound: 0.0,
            best_point: vec![0.0; g.num_edges()],
            lp_iterations: 0,
            lp_solves: 0,
            priced_out: false,
            stuck: false,
        }
    }

    /// One master solve plus one pricing round.
    fn step(&mut self, n: usize) -> Result<(), PolytopeError> {
        // ----- Master LP over the current columns. -----
        let k = self.columns.len();
        let sizes: Vec<f64> = self.columns.iter().map(|f| f.len() as f64).collect();
        let mut master = IncrementalSimplex::new(&sizes);
        let mut row_of_vertex = vec![usize::MAX; n];
        let mut rows = 0usize;
        for (v, slot) in row_of_vertex.iter_mut().enumerate() {
            let terms: Vec<(usize, f64)> = self
                .column_degrees
                .iter()
                .enumerate()
                .filter_map(|(j, degs)| degs.iter().find(|&&(u, _)| u == v).map(|&(_, d)| (j, d)))
                .collect();
            *slot = rows;
            master.add_constraint(&terms, self.caps[v])?;
            rows += 1;
        }
        let convexity: Vec<(usize, f64)> = (0..k).map(|j| (j, 1.0)).collect();
        master.add_constraint(&convexity, 1.0)?;
        let sol = master.solve()?;
        self.lp_iterations += sol.iterations;
        self.lp_solves += 1;
        if sol.objective_value > self.lower_bound {
            self.lower_bound = sol.objective_value;
            let mut point = vec![0.0f64; self.edges.len()];
            for (forest, &lambda) in self.columns.iter().zip(&sol.values) {
                if lambda > 0.0 {
                    for &e in forest {
                        point[e] += lambda;
                    }
                }
            }
            self.best_point = point;
        }

        // ----- Pricing: maximum-weight forest under the master duals. -----
        let duals = master.duals();
        let mu = duals[rows];
        let mut weighted: Vec<(f64, usize)> = self
            .edges
            .iter()
            .enumerate()
            .filter_map(|(i, &(a, b))| {
                let w = 1.0 - duals[row_of_vertex[a]] - duals[row_of_vertex[b]];
                (w > 0.0).then_some((w, i))
            })
            .collect();
        weighted.sort_by(|p, q| q.0.partial_cmp(&p.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut uf = UnionFind::new(n);
        let mut forest: Vec<usize> = Vec::new();
        let mut forest_weight = 0.0;
        for &(w, i) in &weighted {
            let (a, b) = self.edges[i];
            if uf.union(a, b) {
                forest.push(i);
                forest_weight += w;
            }
        }
        forest.sort_unstable();

        if forest_weight - mu <= PRICE_TOL || forest.is_empty() {
            // Certified optimal: no forest prices positive.
            self.priced_out = true;
            return Ok(());
        }
        if !self.seen.insert(forest.clone()) {
            // The pricer re-proposed an existing column: the master duals
            // are numerically off. Stop this engine; its bounds stay valid.
            self.stuck = true;
            return Ok(());
        }
        let degrees = {
            let mut deg = std::collections::HashMap::new();
            for &e in &forest {
                let (a, b) = self.edges[e];
                *deg.entry(a).or_insert(0.0) += 1.0;
                *deg.entry(b).or_insert(0.0) += 1.0;
            }
            deg.into_iter().collect::<Vec<_>>()
        };
        self.columns.push(forest);
        self.column_degrees.push(degrees);
        Ok(())
    }

    fn solution(&self, value: f64) -> PolytopeSolution {
        PolytopeSolution {
            value,
            edge_weights: self.best_point.clone(),
            generated_cuts: self.columns.len(),
            lp_iterations: self.lp_iterations,
            lp_solves: self.lp_solves,
            lp_fallback_components: 1,
        }
    }
}

/// Exactly solves one connected component with per-vertex degree capacities
/// by interleaving column generation (lower bounds) and cutting planes
/// (upper bounds), cost-balanced by pivots spent. Terminates when either
/// engine finishes exactly or when the bounds meet within [`GAP_TOL`].
pub(crate) fn solve_component_with_caps(
    g: &Graph,
    caps: &[f64],
) -> Result<PolytopeSolution, PolytopeError> {
    let n = g.num_vertices();
    debug_assert_eq!(caps.len(), n);
    let mut cg = ColumnGenState::new(g, caps);
    let mut cp = CuttingPlaneState::new(g, caps, CUTS_PER_ROUND)?;
    let mut cp_alive = true;

    for _ in 0..MAX_STEPS {
        // Step the engine that has consumed fewer pivots so far, so neither
        // pathology can dominate the wall clock.
        let step_cg =
            !cp_alive || (!cg.priced_out && !cg.stuck && cg.lp_iterations <= cp.lp_iterations());
        if step_cg {
            cg.step(n)?;
        } else {
            match cp.step(g) {
                Ok(()) => {}
                Err(PolytopeError::Lp(crate::problem::LpError::Stalled { .. })) => {
                    // The cutting-plane engine drowned numerically; column
                    // generation still carries exact termination.
                    cp_alive = false;
                }
                Err(e) => return Err(e),
            }
        }
        // Whichever engine finishes, report the *combined* work of both in
        // the solution counters (they surface in release diagnostics).
        let merge = |mut sol: PolytopeSolution, cg: &ColumnGenState, cp: &CuttingPlaneState| {
            sol.lp_iterations = cg.lp_iterations + cp.lp_iterations();
            sol.lp_solves = cg.lp_solves + cp.lp_solves();
            sol.generated_cuts = cg.columns.len() + cp.generated_cuts();
            sol
        };
        if let Some(sol) = cp.take_finished() {
            return Ok(merge(sol, &cg, &cp));
        }
        if cg.priced_out {
            return Ok(merge(cg.solution(cg.lower_bound), &cg, &cp));
        }
        if cg.stuck && !cp_alive {
            return Err(PolytopeError::Lp(crate::problem::LpError::Stalled {
                pivots: cg.lp_iterations + cp.lp_iterations(),
            }));
        }
        if cp.upper_bound() - cg.lower_bound <= GAP_TOL {
            // The feasible master point is within tolerance of the proven
            // relaxation bound: certified optimal.
            return Ok(merge(cg.solution(cg.lower_bound), &cg, &cp));
        }
    }
    Err(PolytopeError::SeparationDidNotConverge { rounds: MAX_STEPS })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    fn value(g: &Graph, delta: f64) -> f64 {
        let caps = vec![delta; g.num_vertices()];
        solve_component_with_caps(g, &caps).unwrap().value
    }

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn known_small_values() {
        assert!(approx(value(&generators::cycle(3), 1.0), 1.5));
        assert!(approx(value(&generators::cycle(5), 1.0), 2.5));
        assert!(approx(value(&generators::cycle(6), 1.0), 3.0));
        assert!(approx(value(&generators::complete(4), 1.0), 2.0));
        assert!(approx(value(&generators::complete(4), 3.0), 3.0));
        assert!(approx(value(&generators::complete(5), 2.0), 4.0));
        assert!(approx(value(&generators::star(5), 3.0), 3.0));
    }

    #[test]
    fn heterogeneous_caps() {
        // Path a–b–c with cap 0.5 at b: optimum 0.5.
        let g = generators::path(3);
        let sol = solve_component_with_caps(&g, &[1.0, 0.5, 1.0]).unwrap();
        assert!(approx(sol.value, 0.5), "value {}", sol.value);
    }

    #[test]
    fn returned_point_is_feasible_and_attains_the_value() {
        let g = generators::complete(5);
        let sol = solve_component_with_caps(&g, &[2.0; 5]).unwrap();
        let edges = g.edge_vec();
        for &w in &sol.edge_weights {
            assert!((-1e-9..=1.0 + 1e-9).contains(&w));
        }
        for v in g.vertices() {
            let load: f64 = edges
                .iter()
                .zip(&sol.edge_weights)
                .filter(|(&(a, b), _)| a == v || b == v)
                .map(|(_, &w)| w)
                .sum();
            assert!(load <= 2.0 + 1e-6);
        }
        assert!(approx(sol.value, 4.0));
        assert!(approx(sol.edge_weights.iter().sum::<f64>(), sol.value));
    }
}
