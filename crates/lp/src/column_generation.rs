//! Dantzig–Wolfe column generation for the Δ-bounded forest polytope, and
//! the combined dual-bound engine used by the combinatorial backend.
//!
//! The forest polytope is integral: it is exactly the convex hull of the
//! indicator vectors of forests. Maximizing `x(E)` over it intersected with
//! degree capacities is therefore the small LP
//!
//! ```text
//! max Σ_F λ_F |F|   s.t.   Σ_F λ_F deg_F(v) ≤ cap_v  (∀v),
//!                          Σ_F λ_F ≤ 1,   λ ≥ 0,
//! ```
//!
//! over one variable per *forest* — exponentially many, but handled by
//! column generation: the master LP only ever holds the forests generated so
//! far, and the pricing problem "find the forest of maximum reduced cost
//! `Σ_{e=(u,v) ∈ F} (1 − y_u − y_v) − μ`" is a maximum-weight forest, solved
//! exactly by Kruskal's greedy over the graphic matroid. When no forest
//! prices positive, LP duality certifies the master optimum over the *whole*
//! polytope.
//!
//! Column generation and cutting planes fail on complementary regimes:
//!
//! * when the optimum sits on the massively symmetric rank-bound face
//!   (supercritical Erdős–Rényi cores), cutting planes stall fencing
//!   exponentially many cycle-heavy integral points, while a handful of
//!   mixed forest columns reach the bound immediately;
//! * when the optimum is fractional and below the rank bound, cuts bind and
//!   converge quickly, while column generation tails off.
//!
//! Each engine also produces a valid bound at every step — the master value
//! is a **lower** bound (its solution is a feasible point), a fresh
//! relaxation solve an **upper** bound — so [`solve_component_with_caps`]
//! interleaves the two, cost-balanced by pivots spent, and stops as soon as
//! either engine terminates exactly or the bounds meet.

use crate::cutting_plane::CuttingPlaneState;
use crate::simplex::IncrementalSimplex;
use crate::solver::{PolytopeError, PolytopeSolution};
use ccdp_graph::unionfind::UnionFind;
use ccdp_graph::Graph;

/// A generated forest prices positive only above this threshold; on
/// termination the master value is within this of the true optimum.
const PRICE_TOL: f64 = 1e-7;

/// Bounds within this of each other certify the current feasible point.
const GAP_TOL: f64 = 1e-6;

/// Hard bound on combined engine steps (a stall backstop far above need).
const MAX_STEPS: usize = 6000;

/// Per-round cut budget of the embedded cutting-plane engine.
const CUTS_PER_ROUND: usize = 64;

/// Pieces with more than this many vertices + edges run column generation
/// alone: the cutting-plane engine's dense tableau (one variable per edge)
/// and per-root separation oracle are quadratic in the piece, which is what
/// capped the release pipeline at n = 10⁶. Column generation terminates
/// exactly on its own via the pricing certificate; the pieces this large in
/// practice (peeled 2-cores of supercritical ER giants) have few binding
/// capacities, which keeps its master tiny.
const CUT_ENGINE_MAX_WORK: usize = 4096;

/// Stepwise column generation over forests for one connected component with
/// per-vertex degree capacities.
struct ColumnGenState {
    edges: Vec<(usize, usize)>,
    caps: Vec<f64>,
    /// Master row index of each vertex, or `usize::MAX` for vertices whose
    /// capacity constraint is redundant (`cap_v ≥ deg_v`): every column is a
    /// forest, so `Σ_F λ_F deg_F(v) ≤ deg_v` holds for any convex
    /// combination, the constraint can never bind and its dual is exactly 0.
    /// Skipping those rows keeps the master at the scale of the *binding*
    /// vertices — on peeled ER-giant cores a few percent of the piece.
    row_of_vertex: Vec<usize>,
    /// Number of vertex rows in the master (the convexity row comes after).
    rows: usize,
    /// Generated forests (sorted edge-index lists).
    columns: Vec<Vec<usize>>,
    seen: std::collections::HashSet<Vec<usize>>,
    /// The master LP, kept **warm across rounds**: each priced forest enters
    /// via [`IncrementalSimplex::add_variable`] and re-solves with a few
    /// primal pivots. Rebuilding the master from scratch every round made
    /// each step quadratic in the column pool — on the thousand-row masters
    /// of peeled 10⁷-scale giants that was minutes per step.
    master: IncrementalSimplex,
    /// Best feasible value proven so far (master optimum).
    lower_bound: f64,
    /// Best Lagrangian upper bound proven so far: for any duals `y ≥ 0` the
    /// pricing round's exact max-weight forest gives the valid bound
    /// `Σ_v cap_v·y_v + max_F Σ_{e∈F}(1 − y_u − y_v)` — valid even on a
    /// drifted warm basis, so the driver can stop when the bounds meet.
    upper_bound: f64,
    /// Feasible point attaining `lower_bound`.
    best_point: Vec<f64>,
    lp_iterations: usize,
    lp_solves: usize,
    /// Set when pricing certifies optimality of the master.
    priced_out: bool,
    /// Set when pricing re-proposes an existing column (numerically stuck);
    /// the engine stops stepping but its bounds remain valid.
    stuck: bool,
}

impl ColumnGenState {
    fn new(g: &Graph, caps: &[f64]) -> Self {
        let mut row_of_vertex = vec![usize::MAX; g.num_vertices()];
        let mut rows = 0usize;
        for (v, slot) in row_of_vertex.iter_mut().enumerate() {
            if caps[v] < g.degree(v) as f64 {
                *slot = rows;
                rows += 1;
            }
        }
        // The empty master: one capacity row per binding vertex plus the
        // convexity row, no columns yet. Forest columns stream in one per
        // pricing round via `add_variable`.
        let mut master = IncrementalSimplex::new(&[]);
        for (v, &row) in row_of_vertex.iter().enumerate() {
            if row != usize::MAX {
                master
                    .add_constraint(&[], caps[v])
                    .expect("capacities are non-negative");
            }
        }
        master
            .add_constraint(&[], 1.0)
            .expect("convexity rhs is positive");
        ColumnGenState {
            edges: g.edge_vec(),
            caps: caps.to_vec(),
            row_of_vertex,
            rows,
            columns: Vec::new(),
            seen: std::collections::HashSet::new(),
            master,
            lower_bound: 0.0,
            upper_bound: f64::INFINITY,
            best_point: vec![0.0; g.num_edges()],
            lp_iterations: 0,
            lp_solves: 0,
            priced_out: false,
            stuck: false,
        }
    }

    /// One master solve plus one pricing round.
    fn step(&mut self) -> Result<(), PolytopeError> {
        // ----- Warm master re-solve over the current columns. -----
        let sol = self.master.solve()?;
        self.lp_iterations += sol.iterations;
        self.lp_solves += 1;
        if sol.objective_value > self.lower_bound {
            self.lower_bound = sol.objective_value;
            let mut point = vec![0.0f64; self.edges.len()];
            for (forest, &lambda) in self.columns.iter().zip(&sol.values) {
                if lambda > 0.0 {
                    for &e in forest {
                        point[e] += lambda;
                    }
                }
            }
            self.best_point = point;
        }

        // ----- Pricing: maximum-weight forest under the master duals. -----
        // Skipped rows have dual exactly 0 (their constraints are redundant,
        // never tight), so the reduced cost of an edge only involves the
        // duals of its row endpoints.
        let duals = self.master.duals();
        let mu = duals[self.rows];
        let y = |v: usize| {
            let row = self.row_of_vertex[v];
            if row == usize::MAX {
                0.0
            } else {
                duals[row]
            }
        };
        let mut weighted: Vec<(f64, usize)> = self
            .edges
            .iter()
            .enumerate()
            .filter_map(|(i, &(a, b))| {
                let w = 1.0 - y(a) - y(b);
                (w > 0.0).then_some((w, i))
            })
            .collect();
        weighted.sort_by(|p, q| q.0.partial_cmp(&p.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut uf = UnionFind::new(self.row_of_vertex.len());
        let mut forest: Vec<usize> = Vec::new();
        let mut forest_weight = 0.0;
        for &(w, i) in &weighted {
            let (a, b) = self.edges[i];
            if uf.union(a, b) {
                forest.push(i);
                forest_weight += w;
            }
        }
        forest.sort_unstable();

        // Lagrangian bound: `(y, μ')` with `μ' = forest_weight` is dual
        // feasible for ANY `y ≥ 0` (the pricer solves the inner max
        // exactly), so this is a valid upper bound even when the warm basis
        // has drifted. It lets the driver stop on a closed gap long before
        // pricing fully dries up.
        let mut lagrangian = forest_weight;
        for (v, &row) in self.row_of_vertex.iter().enumerate() {
            if row != usize::MAX {
                lagrangian += self.caps[v] * duals[row];
            }
        }
        if lagrangian < self.upper_bound {
            self.upper_bound = lagrangian;
        }

        if forest_weight - mu <= PRICE_TOL || forest.is_empty() {
            // No forest prices positive. On a fresh factorization that
            // certifies optimality; on a drifted warm basis it might be a
            // numerical artifact, so refactorize and let the next round
            // re-price against a clean solve before certifying.
            if self.master.last_solve_was_fresh() {
                self.priced_out = true;
            } else {
                self.master.refactorize();
            }
            return Ok(());
        }
        if !self.seen.insert(forest.clone()) {
            // The pricer re-proposed an existing column: the master duals
            // are numerically off. Stop this engine; its bounds stay valid.
            self.stuck = true;
            return Ok(());
        }
        // Only degrees at row vertices matter to the master; the rest feed
        // constraints that were proven redundant above. BTreeMap keeps the
        // column's term order deterministic.
        let mut degrees = std::collections::BTreeMap::new();
        for &e in &forest {
            let (a, b) = self.edges[e];
            for v in [a, b] {
                let row = self.row_of_vertex[v];
                if row != usize::MAX {
                    *degrees.entry(row).or_insert(0.0) += 1.0;
                }
            }
        }
        let mut terms: Vec<(usize, f64)> = degrees.into_iter().collect();
        terms.push((self.rows, 1.0)); // convexity row
        self.master
            .add_variable(forest.len() as f64, f64::INFINITY, &terms);
        self.columns.push(forest);
        Ok(())
    }

    fn solution(&self, value: f64) -> PolytopeSolution {
        PolytopeSolution {
            value,
            edge_weights: self.best_point.clone(),
            generated_cuts: self.columns.len(),
            lp_iterations: self.lp_iterations,
            lp_solves: self.lp_solves,
            lp_fallback_components: 1,
        }
    }
}

/// Exactly solves one connected component with per-vertex degree capacities
/// by interleaving column generation (lower bounds) and cutting planes
/// (upper bounds), cost-balanced by pivots spent. Terminates when either
/// engine finishes exactly or when the bounds meet within [`GAP_TOL`].
pub(crate) fn solve_component_with_caps(
    g: &Graph,
    caps: &[f64],
) -> Result<PolytopeSolution, PolytopeError> {
    let n = g.num_vertices();
    debug_assert_eq!(caps.len(), n);
    let mut cg = ColumnGenState::new(g, caps);
    // Above the work threshold the cutting-plane engine is not constructed
    // at all: its dense edge-variable tableau and per-root separation oracle
    // are quadratic in the piece. Column generation terminates exactly on
    // its own (pricing certificate), just without the early bound pairing.
    let mut cp = if n + g.num_edges() <= CUT_ENGINE_MAX_WORK {
        Some(CuttingPlaneState::new(g, caps, CUTS_PER_ROUND)?)
    } else {
        None
    };
    let mut cp_alive = cp.is_some();

    for _ in 0..MAX_STEPS {
        // Step the engine that has consumed fewer pivots so far, so neither
        // pathology can dominate the wall clock.
        let cp_pivots = cp.as_ref().map_or(0, |cp| cp.lp_iterations());
        let step_cg = !cp_alive || (!cg.priced_out && !cg.stuck && cg.lp_iterations <= cp_pivots);
        if step_cg {
            cg.step()?;
        } else if let Some(cp) = cp.as_mut() {
            match cp.step(g) {
                Ok(()) => {}
                Err(PolytopeError::Lp(crate::problem::LpError::Stalled { .. })) => {
                    // The cutting-plane engine drowned numerically; column
                    // generation still carries exact termination.
                    cp_alive = false;
                }
                Err(e) => return Err(e),
            }
        }
        // Whichever engine finishes, report the *combined* work of both in
        // the solution counters (they surface in release diagnostics).
        let merge =
            |mut sol: PolytopeSolution, cg: &ColumnGenState, cp: Option<&CuttingPlaneState>| {
                sol.lp_iterations = cg.lp_iterations + cp.map_or(0, |cp| cp.lp_iterations());
                sol.lp_solves = cg.lp_solves + cp.map_or(0, |cp| cp.lp_solves());
                sol.generated_cuts = cg.columns.len() + cp.map_or(0, |cp| cp.generated_cuts());
                sol
            };
        if let Some(sol) = cp.as_mut().and_then(|cp| cp.take_finished()) {
            return Ok(merge(sol, &cg, cp.as_ref()));
        }
        if cg.priced_out {
            return Ok(merge(cg.solution(cg.lower_bound), &cg, cp.as_ref()));
        }
        if cg.stuck && !cp_alive {
            return Err(PolytopeError::Lp(crate::problem::LpError::Stalled {
                pivots: cg.lp_iterations + cp.as_ref().map_or(0, |cp| cp.lp_iterations()),
            }));
        }
        let upper = cp
            .as_ref()
            .map_or(f64::INFINITY, |cp| cp.upper_bound())
            .min(cg.upper_bound);
        if upper - cg.lower_bound <= GAP_TOL {
            // The feasible master point is within tolerance of the proven
            // relaxation bound: certified optimal.
            return Ok(merge(cg.solution(cg.lower_bound), &cg, cp.as_ref()));
        }
    }
    Err(PolytopeError::SeparationDidNotConverge { rounds: MAX_STEPS })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    fn value(g: &Graph, delta: f64) -> f64 {
        let caps = vec![delta; g.num_vertices()];
        solve_component_with_caps(g, &caps).unwrap().value
    }

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn known_small_values() {
        assert!(approx(value(&generators::cycle(3), 1.0), 1.5));
        assert!(approx(value(&generators::cycle(5), 1.0), 2.5));
        assert!(approx(value(&generators::cycle(6), 1.0), 3.0));
        assert!(approx(value(&generators::complete(4), 1.0), 2.0));
        assert!(approx(value(&generators::complete(4), 3.0), 3.0));
        assert!(approx(value(&generators::complete(5), 2.0), 4.0));
        assert!(approx(value(&generators::star(5), 3.0), 3.0));
    }

    #[test]
    fn heterogeneous_caps() {
        // Path a–b–c with cap 0.5 at b: optimum 0.5.
        let g = generators::path(3);
        let sol = solve_component_with_caps(&g, &[1.0, 0.5, 1.0]).unwrap();
        assert!(approx(sol.value, 0.5), "value {}", sol.value);
    }

    #[test]
    fn large_piece_runs_column_generation_alone() {
        // Two capacity-tight triangles joined by a long chain, sized past
        // CUT_ENGINE_MAX_WORK so the cutting-plane engine is skipped. The
        // optimum is integral: a spanning tree dropping one junction-incident
        // edge per triangle respects every cap, so the value is n − 1 — and
        // the pure column-generation path must certify it by pricing alone.
        let chain = 2500usize;
        let n = chain + 4;
        let mut edges: Vec<(usize, usize)> = (0..chain - 1).map(|i| (i, i + 1)).collect();
        // Triangle at the left end: {0, chain, chain+1}.
        edges.push((0, chain));
        edges.push((0, chain + 1));
        edges.push((chain, chain + 1));
        // Triangle at the right end: {chain-1, chain+2, chain+3}.
        edges.push((chain - 1, chain + 2));
        edges.push((chain - 1, chain + 3));
        edges.push((chain + 2, chain + 3));
        let g = Graph::from_edges(n, &edges);
        assert!(g.num_vertices() + g.num_edges() > CUT_ENGINE_MAX_WORK);
        let sol = solve_component_with_caps(&g, &vec![2.0; n]).unwrap();
        assert!(
            approx(sol.value, (n - 1) as f64),
            "value {} vs {}",
            sol.value,
            n - 1
        );
    }

    #[test]
    fn returned_point_is_feasible_and_attains_the_value() {
        let g = generators::complete(5);
        let sol = solve_component_with_caps(&g, &[2.0; 5]).unwrap();
        let edges = g.edge_vec();
        for &w in &sol.edge_weights {
            assert!((-1e-9..=1.0 + 1e-9).contains(&w));
        }
        for v in g.vertices() {
            let load: f64 = edges
                .iter()
                .zip(&sol.edge_weights)
                .filter(|(&(a, b), _)| a == v || b == v)
                .map(|(_, &w)| w)
                .sum();
            assert!(load <= 2.0 + 1e-6);
        }
        assert!(approx(sol.value, 4.0));
        assert!(approx(sol.edge_weights.iter().sum::<f64>(), sol.value));
    }
}
