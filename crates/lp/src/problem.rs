//! Problem container for `max cᵀx, Ax ≤ b, x ≥ 0` linear programs.

use crate::simplex::IncrementalSimplex;

/// Errors reported by the solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The objective is unbounded above over the feasible region.
    Unbounded,
    /// The constraint system admits no feasible point (reported by the dual
    /// simplex when a negative-rhs row has no negative coefficient).
    Infeasible,
    /// The solver made no progress within its pivot budget. Bland's
    /// anti-cycling rule rules out true cycling, so this signals numerical
    /// trouble (a stalled, drifting tableau) rather than a pathological but
    /// valid pivot sequence.
    Stalled {
        /// Lifetime pivot count of the tableau when it stalled.
        pivots: usize,
    },
    /// A right-hand side was negative; this solver requires `b ≥ 0`.
    NegativeRhs { row: usize },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::Infeasible => write!(f, "constraint system is infeasible"),
            LpError::Stalled { pivots } => {
                write!(f, "simplex stalled numerically after {pivots} pivots")
            }
            LpError::NegativeRhs { row } => {
                write!(f, "constraint {row} has a negative right-hand side")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Solution of a linear program.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective_value: f64,
    /// Optimal values of the structural variables.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed.
    pub iterations: usize,
}

/// A linear program `max cᵀx` subject to `Ax ≤ b`, `x ≥ 0`, with `b ≥ 0`.
///
/// Constraints are stored sparsely (index/coefficient pairs); every call to
/// [`LinearProgram::solve`] builds a fresh [`IncrementalSimplex`] tableau.
/// Cutting-plane loops that want warm-started re-solves should drive an
/// [`IncrementalSimplex`] directly instead.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Vec<(usize, f64)>>,
    rhs: Vec<f64>,
}

impl LinearProgram {
    /// Creates a program with the given number of variables and objective vector.
    ///
    /// # Panics
    /// Panics if the objective length does not match `num_vars`.
    pub fn new(num_vars: usize, objective: Vec<f64>) -> Self {
        assert_eq!(objective.len(), num_vars, "objective length mismatch");
        LinearProgram {
            num_vars,
            objective,
            rows: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds a dense constraint `coeffs · x ≤ rhs` (stored sparsely).
    pub fn add_constraint_dense(&mut self, coeffs: Vec<f64>, rhs: f64) {
        assert_eq!(coeffs.len(), self.num_vars, "constraint length mismatch");
        let terms: Vec<(usize, f64)> = coeffs
            .into_iter()
            .enumerate()
            .filter(|&(_, v)| v != 0.0)
            .collect();
        self.rows.push(terms);
        self.rhs.push(rhs);
    }

    /// Adds a sparse constraint `Σ coeff·x_idx ≤ rhs`. Repeated indices accumulate.
    pub fn add_constraint_sparse(&mut self, terms: &[(usize, f64)], rhs: f64) {
        for &(idx, _) in terms {
            assert!(idx < self.num_vars, "variable index out of range");
        }
        self.rows.push(terms.to_vec());
        self.rhs.push(rhs);
    }

    /// Solves the program with the (incremental tableau) simplex method.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        for (i, &b) in self.rhs.iter().enumerate() {
            if b < 0.0 {
                return Err(LpError::NegativeRhs { row: i });
            }
        }
        let mut simplex = IncrementalSimplex::new(&self.objective);
        for (terms, &rhs) in self.rows.iter().zip(&self.rhs) {
            simplex.add_constraint(terms, rhs)?;
        }
        simplex.solve()
    }

    /// Evaluates `coeffs · x` for a candidate solution (helper for oracles/tests).
    pub fn dot(coeffs: &[f64], x: &[f64]) -> f64 {
        coeffs.iter().zip(x).map(|(a, b)| a * b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn trivial_box_constraint() {
        // max x s.t. x ≤ 4.
        let mut lp = LinearProgram::new(1, vec![1.0]);
        lp.add_constraint_dense(vec![1.0], 4.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective_value, 4.0));
        assert!(approx(sol.values[0], 4.0));
    }

    #[test]
    fn two_variable_textbook_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 -> optimum 36 at (2, 6).
        let mut lp = LinearProgram::new(2, vec![3.0, 5.0]);
        lp.add_constraint_dense(vec![1.0, 0.0], 4.0);
        lp.add_constraint_dense(vec![0.0, 2.0], 12.0);
        lp.add_constraint_dense(vec![3.0, 2.0], 18.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective_value, 36.0));
        assert!(approx(sol.values[0], 2.0));
        assert!(approx(sol.values[1], 6.0));
    }

    #[test]
    fn unbounded_detection() {
        // max x + y with only x ≤ 1: y is unbounded.
        let mut lp = LinearProgram::new(2, vec![1.0, 1.0]);
        lp.add_constraint_dense(vec![1.0, 0.0], 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn no_constraints_zero_objective() {
        // max 0 with no constraints: optimum 0 at the origin.
        let lp = LinearProgram::new(3, vec![0.0, 0.0, 0.0]);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective_value, 0.0));
    }

    #[test]
    fn negative_objective_coefficients_stay_at_zero() {
        let mut lp = LinearProgram::new(2, vec![-1.0, 2.0]);
        lp.add_constraint_dense(vec![1.0, 1.0], 5.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective_value, 10.0));
        assert!(approx(sol.values[0], 0.0));
        assert!(approx(sol.values[1], 5.0));
    }

    #[test]
    fn negative_rhs_is_rejected() {
        let mut lp = LinearProgram::new(1, vec![1.0]);
        lp.add_constraint_dense(vec![1.0], -2.0);
        assert!(matches!(
            lp.solve().unwrap_err(),
            LpError::NegativeRhs { row: 0 }
        ));
    }

    #[test]
    fn sparse_constraints_accumulate() {
        // max x0 + x1 s.t. x0 + x1 ≤ 3 (given sparsely, with a repeated index).
        let mut lp = LinearProgram::new(2, vec![1.0, 1.0]);
        lp.add_constraint_sparse(&[(0, 0.5), (0, 0.5), (1, 1.0)], 3.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective_value, 3.0));
    }

    #[test]
    fn incremental_cutting_planes_tighten_the_optimum() {
        // Start loose, add a cut, re-solve: the optimum must not increase.
        let mut lp = LinearProgram::new(2, vec![1.0, 1.0]);
        lp.add_constraint_dense(vec![1.0, 0.0], 10.0);
        lp.add_constraint_dense(vec![0.0, 1.0], 10.0);
        let first = lp.solve().unwrap().objective_value;
        lp.add_constraint_dense(vec![1.0, 1.0], 8.0);
        let second = lp.solve().unwrap().objective_value;
        assert!(approx(first, 20.0));
        assert!(approx(second, 8.0));
        assert!(second <= first + 1e-9);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LinearProgram::new(2, vec![1.0, 1.0]);
        for _ in 0..6 {
            lp.add_constraint_dense(vec![1.0, 1.0], 1.0);
        }
        lp.add_constraint_dense(vec![1.0, 0.0], 1.0);
        lp.add_constraint_dense(vec![0.0, 1.0], 1.0);
        let sol = lp.solve().unwrap();
        assert!(approx(sol.objective_value, 1.0));
    }

    #[test]
    fn solution_is_feasible() {
        let mut lp = LinearProgram::new(3, vec![2.0, 3.0, 1.0]);
        lp.add_constraint_dense(vec![1.0, 1.0, 1.0], 10.0);
        lp.add_constraint_dense(vec![2.0, 1.0, 0.0], 8.0);
        lp.add_constraint_dense(vec![0.0, 1.0, 3.0], 9.0);
        let sol = lp.solve().unwrap();
        for (row, rhs) in [
            (vec![1.0, 1.0, 1.0], 10.0),
            (vec![2.0, 1.0, 0.0], 8.0),
            (vec![0.0, 1.0, 3.0], 9.0),
        ] {
            assert!(LinearProgram::dot(&row, &sol.values) <= rhs + 1e-6);
        }
        for &v in &sol.values {
            assert!(v >= -1e-9);
        }
    }
}
