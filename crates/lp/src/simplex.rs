//! Dense primal simplex for `max cᵀx, Ax ≤ b, x ≥ 0, b ≥ 0`.
//!
//! Because every right-hand side is non-negative, the all-slack basis is feasible
//! and a single phase suffices. Pivoting uses Dantzig's rule (most negative reduced
//! cost) with a switch to Bland's rule after a fixed number of pivots to rule out
//! cycling on degenerate instances.

use crate::problem::{LpError, LpSolution};

/// Numerical tolerance for reduced costs and ratio tests.
const EPS: f64 = 1e-9;

/// Solves the LP given by objective `c`, constraint rows `a` and right-hand sides `b`.
pub fn solve(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Result<LpSolution, LpError> {
    let n = c.len();
    let m = a.len();
    let cols = n + m + 1; // structural vars, slack vars, rhs

    // Tableau: m constraint rows followed by the objective row.
    let mut tab = vec![vec![0.0f64; cols]; m + 1];
    for (i, row) in a.iter().enumerate() {
        tab[i][..n].copy_from_slice(row);
        tab[i][n + i] = 1.0;
        tab[i][cols - 1] = b[i];
    }
    for j in 0..n {
        tab[m][j] = -c[j];
    }

    // basis[i] = index of the basic variable of row i (initially the slacks).
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Bland's rule (below) guarantees termination, so the cap is only an
    // emergency brake against numerical stalls; degenerate forest-polytope
    // relaxations routinely need more pivots than the old 50·(n+m+10).
    let max_iterations = 500 * (n + m + 10);
    let bland_threshold = 10 * (n + m + 10);
    let mut iterations = 0usize;

    loop {
        // Entering variable.
        let entering = if iterations < bland_threshold {
            // Dantzig: most negative objective-row coefficient.
            let mut best = None;
            let mut best_val = -EPS;
            for (j, &val) in tab[m][..cols - 1].iter().enumerate() {
                if val < best_val {
                    best_val = val;
                    best = Some(j);
                }
            }
            best
        } else {
            // Bland: smallest index with a negative coefficient.
            (0..cols - 1).find(|&j| tab[m][j] < -EPS)
        };
        let Some(pivot_col) = entering else {
            break; // optimal
        };

        // Ratio test for the leaving row.
        let mut pivot_row = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let coeff = tab[i][pivot_col];
            if coeff > EPS {
                let ratio = tab[i][cols - 1] / coeff;
                let better = ratio < best_ratio - EPS
                    || ((ratio - best_ratio).abs() <= EPS
                        && pivot_row.is_some_and(|r: usize| basis[i] < basis[r]));
                if (better || pivot_row.is_none()) && ratio < best_ratio + EPS {
                    best_ratio = ratio.min(best_ratio);
                    pivot_row = Some(i);
                }
            }
        }
        let Some(pivot_row) = pivot_row else {
            return Err(LpError::Unbounded);
        };

        // Pivot.
        let pivot_val = tab[pivot_row][pivot_col];
        for v in tab[pivot_row].iter_mut() {
            *v /= pivot_val;
        }
        let (before, rest) = tab.split_at_mut(pivot_row);
        let (pivot_row_data, after) = rest.split_first_mut().expect("pivot row in tableau");
        for row in before.iter_mut().chain(after.iter_mut()) {
            let factor = row[pivot_col];
            if factor.abs() > EPS {
                for (t, &p) in row.iter_mut().zip(pivot_row_data.iter()) {
                    *t -= factor * p;
                }
                row[pivot_col] = 0.0;
            }
        }
        basis[pivot_row] = pivot_col;

        iterations += 1;
        if iterations > max_iterations {
            return Err(LpError::IterationLimit);
        }
    }

    // Extract the solution.
    let mut values = vec![0.0f64; n];
    for (i, &var) in basis.iter().enumerate() {
        if var < n {
            values[var] = tab[i][cols - 1].max(0.0);
        }
    }
    let objective_value = c.iter().zip(&values).map(|(ci, xi)| ci * xi).sum();
    Ok(LpSolution {
        objective_value,
        values,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_maximization() {
        // max 2x + y s.t. x + y ≤ 4, x ≤ 2 -> 6 at (2, 2).
        let sol = solve(&[2.0, 1.0], &[vec![1.0, 1.0], vec![1.0, 0.0]], &[4.0, 2.0]).unwrap();
        assert!(approx(sol.objective_value, 6.0));
    }

    #[test]
    fn all_zero_objective() {
        let sol = solve(&[0.0, 0.0], &[vec![1.0, 1.0]], &[3.0]).unwrap();
        assert!(approx(sol.objective_value, 0.0));
    }

    #[test]
    fn unbounded() {
        let err = solve(&[1.0], &[], &[]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn binding_combination_of_constraints() {
        // max x + 2y + 3z s.t. x+y ≤ 1, y+z ≤ 1, x+z ≤ 1: optimum 2.5 at (0.5,0.5,0.5)? No:
        // the optimum of this classic LP is 2.5 attained at x=0, y=0.5... verify by value.
        let sol = solve(
            &[1.0, 2.0, 3.0],
            &[
                vec![1.0, 1.0, 0.0],
                vec![0.0, 1.0, 1.0],
                vec![1.0, 0.0, 1.0],
            ],
            &[1.0, 1.0, 1.0],
        )
        .unwrap();
        // Exhaustive reasoning: best is y=1? then z=0, x=0 -> 2; z=1, y=0, x=0 -> 3.
        assert!(approx(sol.objective_value, 3.0));
    }

    #[test]
    fn random_lps_are_feasible_and_locally_optimal() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let n = rng.gen_range(1..6);
            let m = rng.gen_range(1..8);
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..3.0)).collect();
            let a: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..2.0)).collect())
                .collect();
            let b: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..5.0)).collect();
            match solve(&c, &a, &b) {
                Ok(sol) => {
                    for (row, &rhs) in a.iter().zip(&b) {
                        let lhs: f64 = row.iter().zip(&sol.values).map(|(r, x)| r * x).sum();
                        assert!(lhs <= rhs + 1e-6, "infeasible solution");
                    }
                    for &x in &sol.values {
                        assert!(x >= -1e-9);
                    }
                }
                Err(LpError::Unbounded) => {
                    // Possible when some column has all-zero constraint coefficients
                    // and a positive objective coefficient.
                }
                Err(e) => panic!("unexpected LP error: {e}"),
            }
        }
    }
}
