//! Incremental bounded-variable simplex for
//! `max cᵀx, Ax ≤ b, 0 ≤ x ≤ u, b ≥ 0`.
//!
//! Two design decisions matter for the forest-polytope workload:
//!
//! * **Implicit upper bounds.** Variable bounds `x_j ≤ u_j` are handled by
//!   the bounded-variable simplex (a nonbasic variable sits at its lower *or*
//!   upper bound) instead of as constraint rows. For the forest LP this
//!   removes one row per edge — the tableau shrinks several-fold — and, more
//!   importantly, removes the massive degeneracy those rows cause at
//!   near-integral vertices (every edge at weight 1 would otherwise
//!   contribute a zero-slack row and the ratio tests drown in ties).
//! * **Warm starts with refactorization.** The tableau and basis survive
//!   across [`IncrementalSimplex::solve`] calls; rows added after an optimal
//!   solve are reduced against the current basis and repaired with
//!   dual-simplex pivots. Accumulated floating-point drift is contained by
//!   rebuilding the tableau from the pristine constraint data
//!   ([`IncrementalSimplex::refactorize`]) whenever a warm re-solve exceeds
//!   its budget, and cutting-plane drivers insist that the final,
//!   convergence-deciding solve runs on a fresh factorization.
//!
//! Anti-cycling: the primal phase uses Dantzig's rule and switches to Bland's
//! rule for the remainder of a solve after a run of degenerate pivots; the
//! dual phase runs under a hard pivot budget (zero-progress dual pivots are
//! normal, not a cycling symptom) and falls back to a fresh primal solve.
//! The remaining pivot cap surfaces as the typed [`LpError::Stalled`].

use crate::problem::{LpError, LpSolution};

/// Numerical tolerance for reduced costs, ratio tests and feasibility checks.
const EPS: f64 = 1e-9;

/// Minimum magnitude of an acceptable pivot element. Pivoting on smaller
/// entries multiplies rounding error by huge factors; such entries are
/// treated as zero in the ratio tests.
const PIVOT_TOL: f64 = 1e-7;

/// Consecutive degenerate primal pivots tolerated before Bland's rule engages.
const DEGENERATE_STREAK_LIMIT: usize = 128;

/// Where a nonbasic column currently sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Basic,
    /// At its lower bound 0.
    Lower,
    /// At its (finite) upper bound.
    Upper,
}

/// An incremental `max cᵀx, Ax ≤ b, 0 ≤ x ≤ u` solver that keeps its tableau
/// and basis across [`IncrementalSimplex::solve`] calls.
#[derive(Clone, Debug)]
pub struct IncrementalSimplex {
    /// Original objective coefficients of the structural variables.
    objective: Vec<f64>,
    /// Upper bounds of the structural variables (`f64::INFINITY` = none).
    /// Slack variables are implicitly `[0, ∞)`.
    upper: Vec<f64>,
    /// Original sparse constraints, kept for refactorization.
    original: Vec<(Vec<(usize, f64)>, f64)>,
    /// Tableau rows `B⁻¹A` over columns `0..objective.len() + rows.len()`.
    rows: Vec<Vec<f64>>,
    /// Current *values* of the basic variables (`xb[i]` belongs to row `i`).
    xb: Vec<f64>,
    /// Objective row (reduced costs); starts as `-c` on structural columns.
    /// Optimality: `≥ 0` on at-lower columns, `≤ 0` on at-upper columns.
    obj: Vec<f64>,
    /// `basis[i]` is the basic variable of row `i`.
    basis: Vec<usize>,
    /// Status of every column.
    status: Vec<Status>,
    /// Total pivots (and bound flips) over the lifetime of the tableau.
    total_pivots: usize,
    /// Whether the tableau has been solved at least once.
    solved_once: bool,
    /// Consecutive primal pivots without progress; engages Bland's rule.
    degenerate_streak: usize,
    /// Sticky-per-solve Bland mode (rules out primal cycling).
    bland_mode: bool,
    /// Whether the last solve ran from a freshly built tableau.
    last_was_fresh: bool,
}

impl IncrementalSimplex {
    /// Creates a solver for `max objective · x` with `x ≥ 0` and no upper
    /// bounds or constraints yet.
    pub fn new(objective: &[f64]) -> Self {
        Self::with_upper_bounds(objective, vec![f64::INFINITY; objective.len()])
    }

    /// Creates a solver for `max objective · x` with `0 ≤ x ≤ upper`
    /// (entries may be `f64::INFINITY`). Bounds are handled implicitly by
    /// the bounded-variable simplex — no constraint rows are spent on them.
    ///
    /// # Panics
    /// Panics if the lengths differ or any bound is negative/NaN.
    pub fn with_upper_bounds(objective: &[f64], upper: Vec<f64>) -> Self {
        assert_eq!(objective.len(), upper.len(), "bounds length mismatch");
        assert!(
            upper.iter().all(|&u| u >= 0.0),
            "upper bounds must be non-negative"
        );
        IncrementalSimplex {
            objective: objective.to_vec(),
            upper,
            original: Vec::new(),
            rows: Vec::new(),
            xb: Vec::new(),
            obj: objective.iter().map(|&c| -c).collect(),
            basis: Vec::new(),
            status: vec![Status::Lower; objective.len()],
            total_pivots: 0,
            solved_once: false,
            degenerate_streak: 0,
            bland_mode: false,
            last_was_fresh: false,
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Total simplex pivots (including bound flips) performed so far.
    pub fn total_pivots(&self) -> usize {
        self.total_pivots
    }

    /// Whether the last [`IncrementalSimplex::solve`] ran on a freshly built
    /// tableau. Cutting-plane loops use this to insist that the final,
    /// convergence-deciding solve is free of accumulated warm-start drift.
    pub fn last_solve_was_fresh(&self) -> bool {
        self.last_was_fresh
    }

    /// Dual values of the constraint rows at the current (optimal) tableau:
    /// the reduced cost of each row's slack column, clamped to `≥ 0`.
    /// Meaningful after a successful [`IncrementalSimplex::solve`]; used by
    /// column-generation pricing.
    pub fn duals(&self) -> Vec<f64> {
        let n = self.num_vars();
        (0..self.rows.len())
            .map(|i| self.obj[n + i].max(0.0))
            .collect()
    }

    /// Upper bound of a column (slacks are unbounded).
    fn bound(&self, col: usize) -> f64 {
        if col < self.upper.len() {
            self.upper[col]
        } else {
            f64::INFINITY
        }
    }

    /// Current value of a column.
    fn value_of(&self, col: usize) -> f64 {
        match self.status[col] {
            Status::Lower => 0.0,
            Status::Upper => self.bound(col),
            Status::Basic => {
                let row = self
                    .basis
                    .iter()
                    .position(|&v| v == col)
                    .expect("basic column has a row");
                self.xb[row]
            }
        }
    }

    /// Adds a structural variable with the given objective coefficient, upper
    /// bound and sparse constraint column (`(constraint row, coefficient)`
    /// pairs; repeated rows accumulate). Returns the new variable's index.
    ///
    /// The variable enters at its lower bound 0, so no basic value changes
    /// and the current basis stays primal-feasible; when the tableau has
    /// already been solved, the new column is expressed in the current basis
    /// through the slack block (whose tableau columns are exactly `B⁻¹`) and
    /// the next [`IncrementalSimplex::solve`] prices it in with a handful of
    /// warm primal pivots. This is what lets a column-generation master grow
    /// by one forest per round without a from-scratch rebuild — the rebuild
    /// is what capped the release pipeline on large masters.
    ///
    /// # Panics
    /// Panics if the bound is negative/NaN or a row index is out of range.
    pub fn add_variable(&mut self, objective: f64, upper: f64, terms: &[(usize, f64)]) -> usize {
        assert!(upper >= 0.0, "upper bound must be non-negative");
        let n = self.objective.len();
        let m = self.rows.len();
        // Deduplicate and sort by row so the basis transform below sums in a
        // deterministic order (callers may pass hash-ordered terms).
        let mut column = std::collections::BTreeMap::new();
        for &(row, coeff) in terms {
            assert!(row < m, "constraint row {row} out of range");
            *column.entry(row).or_insert(0.0) += coeff;
        }
        self.objective.push(objective);
        self.upper.push(upper);
        // Record the column in the pristine constraint data so a later
        // refactorization rebuilds the full LP.
        for (&row, &coeff) in &column {
            self.original[row].0.push((n, coeff));
        }
        // Tableau column of the new variable in the current basis:
        // B⁻¹ a_new = Σ coeff · (slack column of that row), because the
        // slack block starts as the identity and every pivot keeps it equal
        // to B⁻¹. Reduced cost likewise: z − c = Σ coeff · y_row − c.
        let values: Vec<f64> = self
            .rows
            .iter()
            .map(|row| column.iter().map(|(&i, &c)| c * row[n + i]).sum())
            .collect();
        let reduced: f64 = column
            .iter()
            .map(|(&i, &c)| c * self.obj[n + i])
            .sum::<f64>()
            - objective;
        for (row, v) in self.rows.iter_mut().zip(values) {
            row.insert(n, v);
        }
        self.obj.insert(n, reduced);
        self.status.insert(n, Status::Lower);
        for b in &mut self.basis {
            if *b >= n {
                *b += 1;
            }
        }
        n
    }

    /// Adds the sparse constraint `Σ coeff · x_idx ≤ rhs` (repeated indices
    /// accumulate). `rhs` must be non-negative — the all-slack basis of this
    /// single-phase solver requires it.
    ///
    /// When the tableau has already been solved, the new row is immediately
    /// expressed in the current basis; the next [`IncrementalSimplex::solve`]
    /// repairs any resulting infeasibility with dual-simplex pivots.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], rhs: f64) -> Result<(), LpError> {
        if rhs < 0.0 {
            return Err(LpError::NegativeRhs {
                row: self.rows.len(),
            });
        }
        let n = self.objective.len();
        let width = n + self.rows.len();
        let mut row = vec![0.0; width + 1]; // +1 for the new slack column
        for &(idx, coeff) in terms {
            assert!(idx < n, "variable index {idx} out of range");
            row[idx] += coeff;
        }
        self.original.push((terms.to_vec(), rhs));

        // Open the new slack column on every existing row and the objective.
        for existing in &mut self.rows {
            existing.push(0.0);
        }
        self.obj.push(0.0);

        // The new slack's current value = rhs − (row · current x), computed
        // from the original sparse coefficients and current column values.
        let mut slack_value = rhs;
        if self.solved_once {
            for &(idx, coeff) in terms {
                slack_value -= coeff * self.value_of(idx);
            }
            // Express the row in the current basis: zero out basic columns.
            for i in 0..self.rows.len() {
                let factor = row[self.basis[i]];
                if factor.abs() > EPS {
                    for (t, &p) in row.iter_mut().zip(self.rows[i].iter()) {
                        *t -= factor * p;
                    }
                    row[self.basis[i]] = 0.0;
                }
            }
        }
        row[width] = 1.0; // slack of the new row
        self.basis.push(width);
        self.status.push(Status::Basic);
        self.rows.push(row);
        self.xb.push(slack_value);
        Ok(())
    }

    /// Re-optimizes and returns the current optimum.
    ///
    /// The first call runs the primal simplex from the all-slack basis; later
    /// calls only repair added rows with dual-simplex pivots. A warm re-solve
    /// that exceeds its budget triggers a refactorization (rebuild from the
    /// original data) and a from-scratch solve before any error is reported.
    pub fn solve(&mut self) -> Result<LpSolution, LpError> {
        let pivots_before = self.total_pivots;
        if self.solved_once {
            self.degenerate_streak = 0;
            self.bland_mode = false;
            let warm_cap = self.total_pivots + 8 * (self.rows.len() + 20);
            match self
                .dual_phase(warm_cap)
                .and_then(|()| self.primal_phase(warm_cap))
            {
                Ok(()) => {
                    self.last_was_fresh = false;
                    return Ok(self.extract(pivots_before));
                }
                // Stalls, infeasibility (necessarily spurious, since `b ≥ 0`
                // keeps the origin feasible) and unboundedness (adding rows
                // cannot unbound a previously solved LP; a drifted tableau
                // can fake it) all trigger a rebuild — the fresh solve below
                // re-detects any genuine failure on clean numbers.
                Err(LpError::Stalled { .. })
                | Err(LpError::Infeasible)
                | Err(LpError::Unbounded) => {
                    self.rebuild_tableau();
                }
                Err(e) => return Err(e),
            }
        }
        // Fresh (or just-refactorized) tableau: the all-lower/all-slack state
        // is feasible, so the dual phase is a no-op and the primal works.
        self.degenerate_streak = 0;
        self.bland_mode = false;
        let cap = self.total_pivots + 600 * (self.num_vars() + self.rows.len() + 10);
        self.dual_phase(cap)?;
        self.primal_phase(cap)?;
        self.solved_once = true;
        self.last_was_fresh = true;
        Ok(self.extract(pivots_before))
    }

    /// Discards all accumulated pivot state and rebuilds the tableau from the
    /// pristine original constraints. The next [`IncrementalSimplex::solve`]
    /// runs from scratch on clean numbers. Callers that detect inconsistency
    /// between a solution and the constraints it supposedly satisfies should
    /// call this and re-solve.
    pub fn refactorize(&mut self) {
        self.rebuild_tableau();
    }

    fn rebuild_tableau(&mut self) {
        let n = self.objective.len();
        let m = self.original.len();
        self.obj = self.objective.iter().map(|&c| -c).collect();
        self.obj.resize(n + m, 0.0);
        self.rows.clear();
        self.xb.clear();
        self.basis = (n..n + m).collect();
        self.status = vec![Status::Lower; n];
        self.status.resize(n + m, Status::Basic);
        for (i, (terms, rhs)) in self.original.iter().enumerate() {
            let mut row = vec![0.0; n + m];
            for &(idx, coeff) in terms {
                row[idx] += coeff;
            }
            row[n + i] = 1.0;
            self.rows.push(row);
            self.xb.push(*rhs);
        }
        self.solved_once = false;
    }

    /// Reads the solution off the tableau.
    fn extract(&self, pivots_before: usize) -> LpSolution {
        let n = self.num_vars();
        let mut values = vec![0.0f64; n];
        for ((value, status), &upper) in values.iter_mut().zip(&self.status).zip(&self.upper) {
            if *status == Status::Upper {
                *value = upper;
            }
        }
        for (i, &var) in self.basis.iter().enumerate() {
            if var < n {
                values[var] = self.xb[i].max(0.0);
            }
        }
        let objective_value = self.objective.iter().zip(&values).map(|(c, x)| c * x).sum();
        LpSolution {
            objective_value,
            values,
            iterations: self.total_pivots - pivots_before,
        }
    }

    /// Dual phase: repairs basics that violate their bounds (negative, or —
    /// for bounded structural basics — above their upper bound), preserving
    /// dual feasibility of the objective row.
    fn dual_phase(&mut self, pivot_cap: usize) -> Result<(), LpError> {
        loop {
            // Leaving row: largest bound violation.
            let mut leaving: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            let mut worst = EPS;
            for (i, &value) in self.xb.iter().enumerate() {
                let below = -value;
                let above = value - self.bound(self.basis[i]);
                if below > worst {
                    worst = below;
                    leaving = Some((i, false));
                }
                if above > worst {
                    worst = above;
                    leaving = Some((i, true));
                }
            }
            let Some((r, leaves_at_upper)) = leaving else {
                return Ok(());
            };

            // Entering column: dual ratio test. For a basic leaving at its
            // lower bound, eligible columns are at-lower with negative row
            // entry or at-upper with positive row entry (movement directions
            // that raise xb[r]); mirrored for leaving at upper. Among
            // eligible columns the pivot must keep every reduced cost on the
            // right side of zero, which selects the minimizer of
            // |obj[j] / row[j]|.
            let width = self.num_vars() + self.rows.len();
            let mut entering: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for j in 0..width {
                if self.status[j] == Status::Basic {
                    continue;
                }
                let coeff = self.rows[r][j];
                let eligible = if !leaves_at_upper {
                    (self.status[j] == Status::Lower && coeff < -PIVOT_TOL)
                        || (self.status[j] == Status::Upper && coeff > PIVOT_TOL)
                } else {
                    (self.status[j] == Status::Lower && coeff > PIVOT_TOL)
                        || (self.status[j] == Status::Upper && coeff < -PIVOT_TOL)
                };
                if eligible {
                    let ratio = (self.obj[j] / coeff).abs();
                    if entering.is_none() || ratio < best_ratio - EPS {
                        best_ratio = ratio.min(best_ratio);
                        entering = Some(j);
                    }
                }
            }
            let Some(j) = entering else {
                return Err(LpError::Infeasible);
            };

            // Displacement of the entering column that brings xb[r] exactly
            // to the violated bound.
            let target = if leaves_at_upper {
                self.bound(self.basis[r])
            } else {
                0.0
            };
            let dir = if self.status[j] == Status::Lower {
                1.0
            } else {
                -1.0
            };
            let t = (self.xb[r] - target) / (dir * self.rows[r][j]);

            // If the entering column would overshoot its own opposite bound,
            // flip it there instead and retry the same leaving row.
            let bound_j = self.bound(j);
            if bound_j.is_finite() && t > bound_j + EPS {
                self.flip_bound(j, pivot_cap)?;
                continue;
            }
            self.pivot(r, j, t.max(0.0), leaves_at_upper, pivot_cap)?;
        }
    }

    /// Primal phase: improves the objective until every reduced cost is on
    /// the right side of zero (≥ 0 at lower, ≤ 0 at upper).
    fn primal_phase(&mut self, pivot_cap: usize) -> Result<(), LpError> {
        loop {
            let width = self.num_vars() + self.rows.len();
            if self.degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                self.bland_mode = true;
            }
            // Entering column: a nonbasic whose movement off its bound
            // improves the objective. Dantzig picks the worst violation;
            // Bland the smallest index.
            let violation = |s: &Self, j: usize| -> f64 {
                match s.status[j] {
                    Status::Lower => -s.obj[j],
                    Status::Upper => s.obj[j],
                    Status::Basic => f64::NEG_INFINITY,
                }
            };
            let entering = if self.bland_mode {
                (0..width).find(|&j| violation(self, j) > EPS)
            } else {
                let mut best = None;
                let mut best_val = EPS;
                for j in 0..width {
                    let v = violation(self, j);
                    if v > best_val {
                        best_val = v;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(j) = entering else {
                return Ok(());
            };
            let dir = if self.status[j] == Status::Lower {
                1.0
            } else {
                -1.0
            };

            // Ratio test: the entering displacement is limited by its own
            // opposite bound and by every basic hitting one of its bounds.
            let mut limit = self.bound(j); // own-bound flip
            let mut leaving: Option<(usize, bool)> = None;
            for i in 0..self.rows.len() {
                let a = dir * self.rows[i][j];
                if a > PIVOT_TOL {
                    // Basic decreases towards its lower bound 0.
                    let ratio = self.xb[i].max(0.0) / a;
                    let better = ratio < limit - EPS
                        || (ratio < limit + EPS
                            && leaving.is_some_and(|(l, _)| self.basis[i] < self.basis[l]));
                    if better {
                        limit = ratio.min(limit);
                        leaving = Some((i, false));
                    }
                } else if a < -PIVOT_TOL {
                    let ub = self.bound(self.basis[i]);
                    if ub.is_finite() {
                        // Basic increases towards its upper bound.
                        let ratio = (ub - self.xb[i]).max(0.0) / -a;
                        let better = ratio < limit - EPS
                            || (ratio < limit + EPS
                                && leaving.is_some_and(|(l, _)| self.basis[i] < self.basis[l]));
                        if better {
                            limit = ratio.min(limit);
                            leaving = Some((i, true));
                        }
                    }
                }
            }
            if limit.is_infinite() {
                return Err(LpError::Unbounded);
            }
            match leaving {
                None => self.flip_bound(j, pivot_cap)?,
                Some((r, leaves_at_upper)) => {
                    self.pivot(r, j, limit, leaves_at_upper, pivot_cap)?;
                }
            }
        }
    }

    /// Moves nonbasic column `j` to its opposite bound (no basis change).
    fn flip_bound(&mut self, j: usize, pivot_cap: usize) -> Result<(), LpError> {
        if self.total_pivots >= pivot_cap {
            return Err(LpError::Stalled {
                pivots: self.total_pivots,
            });
        }
        let u = self.bound(j);
        debug_assert!(u.is_finite(), "cannot flip an unbounded column");
        let delta = match self.status[j] {
            Status::Lower => u,
            Status::Upper => -u,
            Status::Basic => unreachable!("flip of a basic column"),
        };
        for (i, row) in self.rows.iter().enumerate() {
            self.xb[i] -= delta * row[j];
        }
        self.status[j] = match self.status[j] {
            Status::Lower => Status::Upper,
            _ => Status::Lower,
        };
        self.total_pivots += 1;
        // A flip moves no basic out of its bounds direction-wise; count it
        // as degenerate only when the displacement is (numerically) zero.
        if u <= EPS {
            self.degenerate_streak += 1;
        } else {
            self.degenerate_streak = 0;
        }
        Ok(())
    }

    /// Pivots entering column `j` (moving `t` off its bound) against row `r`,
    /// whose basic leaves at its lower (`leaves_at_upper = false`) or upper
    /// bound.
    fn pivot(
        &mut self,
        r: usize,
        j: usize,
        t: f64,
        leaves_at_upper: bool,
        pivot_cap: usize,
    ) -> Result<(), LpError> {
        if self.total_pivots >= pivot_cap {
            return Err(LpError::Stalled {
                pivots: self.total_pivots,
            });
        }
        let dir = if self.status[j] == Status::Lower {
            1.0
        } else {
            -1.0
        };
        // New value of the entering variable.
        let entering_value = match self.status[j] {
            Status::Lower => t,
            Status::Upper => self.bound(j) - t,
            Status::Basic => unreachable!("entering column is nonbasic"),
        };
        // Move every basic along the entering displacement.
        for (i, row) in self.rows.iter().enumerate() {
            self.xb[i] -= t * dir * row[j];
        }
        // The leaving variable parks exactly on the bound it hit.
        let leaving = self.basis[r];
        self.status[leaving] = if leaves_at_upper {
            Status::Upper
        } else {
            Status::Lower
        };
        self.xb[r] = entering_value;
        self.status[j] = Status::Basic;
        self.basis[r] = j;

        // Gauss–Jordan elimination on the tableau and the objective row.
        let inv = 1.0 / self.rows[r][j];
        for v in self.rows[r].iter_mut() {
            *v *= inv;
        }
        let (before, rest) = self.rows.split_at_mut(r);
        let (pivot_row, after) = rest.split_first_mut().expect("pivot row exists");
        for row in before.iter_mut().chain(after.iter_mut()) {
            let factor = row[j];
            if factor.abs() > EPS {
                for (x, &p) in row.iter_mut().zip(pivot_row.iter()) {
                    *x -= factor * p;
                }
                row[j] = 0.0;
            }
        }
        let factor = self.obj[j];
        if factor.abs() > EPS {
            for (x, &p) in self.obj.iter_mut().zip(pivot_row.iter()) {
                *x -= factor * p;
            }
            self.obj[j] = 0.0;
        }

        self.total_pivots += 1;
        if t <= EPS {
            self.degenerate_streak += 1;
        } else {
            self.degenerate_streak = 0;
        }
        Ok(())
    }
}

/// Solves the LP given by objective `c`, constraint rows `a` and right-hand
/// sides `b` from scratch (convenience wrapper over [`IncrementalSimplex`]).
pub fn solve(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Result<LpSolution, LpError> {
    let mut simplex = IncrementalSimplex::new(c);
    for (row, &rhs) in a.iter().zip(b) {
        let terms: Vec<(usize, f64)> = row
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(j, &v)| (j, v))
            .collect();
        simplex.add_constraint(&terms, rhs)?;
    }
    simplex.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_maximization() {
        // max 2x + y s.t. x + y ≤ 4, x ≤ 2 -> 6 at (2, 2).
        let sol = solve(&[2.0, 1.0], &[vec![1.0, 1.0], vec![1.0, 0.0]], &[4.0, 2.0]).unwrap();
        assert!(approx(sol.objective_value, 6.0));
    }

    #[test]
    fn all_zero_objective() {
        let sol = solve(&[0.0, 0.0], &[vec![1.0, 1.0]], &[3.0]).unwrap();
        assert!(approx(sol.objective_value, 0.0));
    }

    #[test]
    fn unbounded() {
        let err = solve(&[1.0], &[], &[]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn binding_combination_of_constraints() {
        // max x + 2y + 3z s.t. x+y ≤ 1, y+z ≤ 1, x+z ≤ 1: optimum 3 at z=1.
        let sol = solve(
            &[1.0, 2.0, 3.0],
            &[
                vec![1.0, 1.0, 0.0],
                vec![0.0, 1.0, 1.0],
                vec![1.0, 0.0, 1.0],
            ],
            &[1.0, 1.0, 1.0],
        )
        .unwrap();
        assert!(approx(sol.objective_value, 3.0));
    }

    #[test]
    fn upper_bounds_replace_rows() {
        // max x + y, x ≤ 0.6, y ≤ 0.8 via implicit bounds, x + y ≤ 1.2.
        let mut s = IncrementalSimplex::with_upper_bounds(&[1.0, 1.0], vec![0.6, 0.8]);
        s.add_constraint(&[(0, 1.0), (1, 1.0)], 1.2).unwrap();
        let sol = s.solve().unwrap();
        assert!(approx(sol.objective_value, 1.2));
        assert!(sol.values[0] <= 0.6 + 1e-9);
        assert!(sol.values[1] <= 0.8 + 1e-9);
        // Loosen the coupling constraint away: the bounds bind at 1.4.
        let mut s = IncrementalSimplex::with_upper_bounds(&[1.0, 1.0], vec![0.6, 0.8]);
        s.add_constraint(&[(0, 1.0), (1, 1.0)], 5.0).unwrap();
        let sol = s.solve().unwrap();
        assert!(approx(sol.objective_value, 1.4));
        assert!(approx(sol.values[0], 0.6));
        assert!(approx(sol.values[1], 0.8));
    }

    #[test]
    fn bounded_and_unbounded_mix() {
        // y unbounded above with negative objective stays at 0; x capped.
        let mut s = IncrementalSimplex::with_upper_bounds(&[3.0, -1.0], vec![2.0, f64::INFINITY]);
        s.add_constraint(&[(0, 1.0), (1, 1.0)], 10.0).unwrap();
        let sol = s.solve().unwrap();
        assert!(approx(sol.objective_value, 6.0));
        assert!(approx(sol.values[0], 2.0));
        assert!(approx(sol.values[1], 0.0));
    }

    #[test]
    fn warm_started_resolve_matches_from_scratch() {
        let c = vec![1.0, 1.0, 1.0];
        let mut inc = IncrementalSimplex::new(&c);
        inc.add_constraint(&[(0, 1.0), (1, 1.0)], 4.0).unwrap();
        inc.add_constraint(&[(1, 1.0), (2, 1.0)], 3.0).unwrap();
        inc.add_constraint(&[(0, 1.0), (2, 1.0)], 5.0).unwrap();
        let first = inc.solve().unwrap();
        assert!(approx(first.objective_value, 6.0));

        inc.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], 4.5)
            .unwrap();
        let second = inc.solve().unwrap();
        let scratch = solve(
            &c,
            &[
                vec![1.0, 1.0, 0.0],
                vec![0.0, 1.0, 1.0],
                vec![1.0, 0.0, 1.0],
                vec![1.0, 1.0, 1.0],
            ],
            &[4.0, 3.0, 5.0, 4.5],
        )
        .unwrap();
        assert!(approx(second.objective_value, scratch.objective_value));
    }

    #[test]
    fn repeated_cut_rounds_stay_consistent() {
        // A sequence of progressively tighter cuts; after each one the
        // incremental optimum must match a from-scratch solve.
        let n = 6;
        let c = vec![1.0; n];
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        let mut inc = IncrementalSimplex::new(&c);
        for j in 0..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            inc.add_constraint(&[(j, 1.0)], 2.0).unwrap();
            rows.push(row);
            rhs.push(2.0);
        }
        inc.solve().unwrap();
        for k in 0..6 {
            let bound = 9.0 - k as f64;
            let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, 1.0)).collect();
            inc.add_constraint(&terms, bound).unwrap();
            rows.push(vec![1.0; n]);
            rhs.push(bound);
            let incremental = inc.solve().unwrap();
            let scratch = solve(&c, &rows, &rhs).unwrap();
            assert!(
                approx(incremental.objective_value, scratch.objective_value),
                "round {k}: {} vs {}",
                incremental.objective_value,
                scratch.objective_value
            );
        }
    }

    #[test]
    fn warm_cuts_with_upper_bounds_stay_consistent() {
        // Cuts over bounded variables: mirror of the forest-polytope shape.
        let n = 5;
        let mut inc = IncrementalSimplex::with_upper_bounds(&vec![1.0; n], vec![1.0; n]);
        for j in 0..n {
            inc.add_constraint(&[(j, 1.0), ((j + 1) % n, 1.0)], 1.5)
                .unwrap();
        }
        let first = inc.solve().unwrap();
        inc.add_constraint(&(0..n).map(|j| (j, 1.0)).collect::<Vec<_>>(), 2.0)
            .unwrap();
        let second = inc.solve().unwrap();
        assert!(second.objective_value <= first.objective_value + 1e-9);
        assert!(approx(second.objective_value, 2.0));
        for &v in &second.values {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn added_variable_matches_from_scratch() {
        // max x0 + 2·x1 s.t. x0 + x1 ≤ 3, x0 ≤ 2 → 6 at (0, 3). Then add a
        // third variable worth 5 in the first row only: optimum jumps to 15.
        let mut inc = IncrementalSimplex::new(&[1.0, 2.0]);
        inc.add_constraint(&[(0, 1.0), (1, 1.0)], 3.0).unwrap();
        inc.add_constraint(&[(0, 1.0)], 2.0).unwrap();
        let first = inc.solve().unwrap();
        assert!(approx(first.objective_value, 6.0));
        let idx = inc.add_variable(5.0, f64::INFINITY, &[(0, 1.0)]);
        assert_eq!(idx, 2);
        let second = inc.solve().unwrap();
        assert!(approx(second.objective_value, 15.0));
        assert!(approx(second.values[2], 3.0));
        // Fresh reference with the column present from the start.
        let scratch = solve(
            &[1.0, 2.0, 5.0],
            &[vec![1.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]],
            &[3.0, 2.0],
        )
        .unwrap();
        assert!(approx(second.objective_value, scratch.objective_value));
    }

    #[test]
    fn added_variable_survives_refactorization() {
        let mut inc = IncrementalSimplex::new(&[1.0]);
        inc.add_constraint(&[(0, 1.0)], 4.0).unwrap();
        inc.solve().unwrap();
        inc.add_variable(3.0, 1.5, &[(0, 2.0)]);
        let warm = inc.solve().unwrap();
        inc.refactorize();
        let fresh = inc.solve().unwrap();
        assert!(approx(warm.objective_value, fresh.objective_value));
        // x1 capped at 1.5 by its implicit bound: 3·1.5 + (4 − 3) = 5.5.
        assert!(approx(fresh.objective_value, 5.5));
    }

    #[test]
    fn random_columns_added_warm_match_scratch() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for case in 0..30 {
            let m = rng.gen_range(1..6);
            let rhs: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..4.0)).collect();
            let mut inc = IncrementalSimplex::new(&[]);
            for &b in &rhs {
                inc.add_constraint(&[], b).unwrap();
            }
            let mut cols: Vec<(f64, Vec<f64>)> = Vec::new();
            // Column-generation shape: alternate solves and column additions.
            for round in 0..8 {
                let c = rng.gen_range(0.1..3.0);
                let col: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..2.0)).collect();
                let terms: Vec<(usize, f64)> =
                    col.iter().enumerate().map(|(i, &v)| (i, v)).collect();
                inc.add_variable(c, f64::INFINITY, &terms);
                cols.push((c, col));
                if round % 2 == 0 {
                    inc.solve().unwrap();
                }
            }
            let warm = inc.solve().unwrap();
            // From-scratch reference over the same columns.
            let c: Vec<f64> = cols.iter().map(|(c, _)| *c).collect();
            let rows: Vec<Vec<f64>> = (0..m)
                .map(|i| cols.iter().map(|(_, col)| col[i]).collect())
                .collect();
            let scratch = solve(&c, &rows, &rhs).unwrap();
            assert!(
                (warm.objective_value - scratch.objective_value).abs() < 1e-6,
                "case {case}: warm {} vs scratch {}",
                warm.objective_value,
                scratch.objective_value
            );
        }
    }

    #[test]
    fn refactorize_preserves_the_problem() {
        let mut inc = IncrementalSimplex::with_upper_bounds(&[2.0, 1.0], vec![1.5, f64::INFINITY]);
        inc.add_constraint(&[(0, 1.0), (1, 2.0)], 4.0).unwrap();
        let before = inc.solve().unwrap();
        inc.refactorize();
        let after = inc.solve().unwrap();
        assert!(approx(before.objective_value, after.objective_value));
        assert!(after.iterations > 0, "refactorized solve runs from scratch");
    }

    #[test]
    fn degenerate_lp_terminates_without_stall() {
        // Heavily degenerate: many redundant constraints through one vertex.
        let n = 4;
        let mut inc = IncrementalSimplex::new(&vec![1.0; n]);
        for _ in 0..10 {
            let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, 1.0)).collect();
            inc.add_constraint(&terms, 1.0).unwrap();
        }
        for j in 0..n {
            inc.add_constraint(&[(j, 1.0)], 1.0).unwrap();
        }
        let sol = inc.solve().unwrap();
        assert!(approx(sol.objective_value, 1.0));
    }

    #[test]
    fn negative_rhs_rejected_at_add_time() {
        let mut inc = IncrementalSimplex::new(&[1.0]);
        assert_eq!(
            inc.add_constraint(&[(0, 1.0)], -1.0).unwrap_err(),
            LpError::NegativeRhs { row: 0 }
        );
    }

    #[test]
    fn random_lps_are_feasible_and_match_scratch_after_cuts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for case in 0..40 {
            let n = rng.gen_range(1..6);
            let m = rng.gen_range(1..8);
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..3.0)).collect();
            let bounds: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.5 {
                        rng.gen_range(0.2..2.0)
                    } else {
                        f64::INFINITY
                    }
                })
                .collect();
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut rhs: Vec<f64> = Vec::new();
            let mut inc = IncrementalSimplex::with_upper_bounds(&c, bounds.clone());
            // Box every variable through rows as well, so the reference
            // (bound-free) solver sees the same feasible region.
            for j in 0..n {
                let mut row = vec![0.0; n];
                row[j] = 1.0;
                let b = if bounds[j].is_finite() {
                    bounds[j]
                } else {
                    8.0
                };
                inc.add_constraint(&[(j, 1.0)], b).unwrap();
                rows.push(row);
                rhs.push(b);
            }
            for _ in 0..m {
                let row: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
                let b = rng.gen_range(0.5..5.0);
                let terms: Vec<(usize, f64)> =
                    row.iter().enumerate().map(|(j, &v)| (j, v)).collect();
                inc.add_constraint(&terms, b).unwrap();
                rows.push(row);
                rhs.push(b);
            }
            inc.solve().unwrap();
            // Add a random cut and re-solve incrementally.
            let cut: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.5)).collect();
            let cut_rhs = rng.gen_range(0.5..3.0);
            let terms: Vec<(usize, f64)> = cut.iter().enumerate().map(|(j, &v)| (j, v)).collect();
            inc.add_constraint(&terms, cut_rhs).unwrap();
            rows.push(cut);
            rhs.push(cut_rhs);
            let sol = inc.solve().unwrap();
            let scratch = solve(&c, &rows, &rhs).unwrap();
            assert!(
                (sol.objective_value - scratch.objective_value).abs() < 1e-6,
                "case {case}: incremental {} vs scratch {}",
                sol.objective_value,
                scratch.objective_value
            );
            for (row, &b) in rows.iter().zip(&rhs) {
                let lhs: f64 = row.iter().zip(&sol.values).map(|(r, x)| r * x).sum();
                assert!(lhs <= b + 1e-6, "case {case}: infeasible solution");
            }
            for (&x, &u) in sol.values.iter().zip(&bounds) {
                assert!(x >= -1e-9 && x <= u + 1e-9, "case {case}: bound violated");
            }
        }
    }
}
