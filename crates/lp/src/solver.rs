//! The pluggable solver layer for the Δ-bounded forest polytope.
//!
//! The paper's Lipschitz extension `f_Δ(G)` is the maximum of `x(E)` over the
//! polytope `P_Δ(G)` (Definition 3.1): `x ≥ 0`, `x(E[S]) ≤ |S| − 1` for every
//! vertex set `S`, and `x(δ(v)) ≤ Δ` for every vertex. Everything upstream
//! (extension family, private estimators, benches) only needs *some* exact
//! maximizer, so the choice of algorithm is abstracted behind the
//! [`PolytopeSolver`] trait with two interchangeable backends:
//!
//! * [`CombinatorialSolver`] (the default) — graph-algorithm-speed solver
//!   built from exact combinatorial reductions (fractional leaf peeling with
//!   δ-capping, exhausted-vertex elimination, Kruskal-style capped greedy over
//!   the graphic matroid, and the local-repair spanning-forest construction of
//!   Lemma 1.8). Every reduction is justified by an exchange argument or a
//!   matching upper-bound certificate, so the backend is exact; only the
//!   irreducible fractional core of a component — typically a small remnant of
//!   its 2-core — falls back to the cutting-plane engine.
//! * [`SimplexSolver`] — the reference backend: one LP per connected
//!   component with no combinatorial reductions, cutting planes paired with
//!   the column-generation lower bound (pure cutting planes available via
//!   [`SimplexSolver::pure_cutting_planes`]).
//!
//! Both backends decompose per connected component (the objective and every
//! constraint of `P_Δ(G)` do) and return the same [`PolytopeSolution`].

use crate::cutting_plane;
use crate::problem::LpError;
use ccdp_exec::{effective_parallelism, parallel_map};
use ccdp_graph::components::components;
use ccdp_graph::subgraph::induced_subgraph;
use ccdp_graph::{CsrGraph, Graph};

/// Errors surfaced by the polytope solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum PolytopeError {
    /// `Δ` must be positive and finite.
    InvalidDelta {
        /// The rejected value.
        delta: f64,
    },
    /// The underlying LP solver failed.
    Lp(LpError),
    /// The cutting-plane loop did not converge within its round limit.
    SeparationDidNotConverge {
        /// Number of rounds the loop ran before giving up.
        rounds: usize,
    },
}

impl std::fmt::Display for PolytopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolytopeError::InvalidDelta { delta } => {
                write!(f, "delta must be positive and finite, got {delta}")
            }
            PolytopeError::Lp(e) => write!(f, "LP solver error: {e}"),
            PolytopeError::SeparationDidNotConverge { rounds } => {
                write!(
                    f,
                    "constraint generation did not converge within {rounds} rounds"
                )
            }
        }
    }
}

impl std::error::Error for PolytopeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolytopeError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for PolytopeError {
    fn from(e: LpError) -> Self {
        PolytopeError::Lp(e)
    }
}

/// Result of maximizing `x(E)` over the Δ-bounded forest polytope.
#[derive(Clone, Debug)]
pub struct PolytopeSolution {
    /// The optimum `f_Δ(G)`.
    pub value: f64,
    /// Optimal edge weights, indexed like [`Graph::edge_vec`].
    pub edge_weights: Vec<f64>,
    /// Number of violated forest constraints that had to be generated.
    pub generated_cuts: usize,
    /// Total simplex pivots across all LP re-solves.
    pub lp_iterations: usize,
    /// Number of LP solves (including warm-started re-solves after cuts).
    pub lp_solves: usize,
    /// Components (after combinatorial reduction) that needed the LP fallback;
    /// always equals the number of LP-solved components for [`SimplexSolver`].
    pub lp_fallback_components: usize,
}

impl PolytopeSolution {
    /// An all-zero solution for a graph with `num_edges` edges (empty polytope
    /// optimum, e.g. an edgeless graph).
    pub fn zero(num_edges: usize) -> Self {
        PolytopeSolution {
            value: 0.0,
            edge_weights: vec![0.0; num_edges],
            generated_cuts: 0,
            lp_iterations: 0,
            lp_solves: 0,
            lp_fallback_components: 0,
        }
    }

    /// Folds a component-local solution into `self` using the component's
    /// local edge list and the local→global vertex map.
    fn absorb_component(
        &mut self,
        local: &Graph,
        map: &[usize],
        sol: PolytopeSolution,
        edge_index: &std::collections::HashMap<(usize, usize), usize>,
    ) {
        self.value += sol.value;
        self.generated_cuts += sol.generated_cuts;
        self.lp_iterations += sol.lp_iterations;
        self.lp_solves += sol.lp_solves;
        self.lp_fallback_components += sol.lp_fallback_components;
        for ((lu, lv), w) in local.edge_vec().into_iter().zip(sol.edge_weights) {
            let (gu, gv) = (map[lu], map[lv]);
            let key = if gu < gv { (gu, gv) } else { (gv, gu) };
            self.edge_weights[edge_index[&key]] = w;
        }
    }
}

/// An exact maximizer of `x(E)` over the Δ-bounded forest polytope `P_Δ(G)`.
///
/// Implementations must return the true LP optimum (all backends are exact;
/// they differ in *how* they get there and how fast). The returned
/// [`PolytopeSolution::edge_weights`] must be a feasible point of `P_Δ(G)`
/// attaining [`PolytopeSolution::value`].
pub trait PolytopeSolver: std::fmt::Debug + Send + Sync {
    /// A short, stable backend name (used in logs and diagnostics).
    fn name(&self) -> &'static str;

    /// Maximizes `x(E)` over `P_Δ(G)`. `delta` may be fractional — the
    /// polytope is defined for any `Δ > 0` — although the paper's algorithm
    /// only uses integer values.
    fn solve(&self, g: &Graph, delta: f64) -> Result<PolytopeSolution, PolytopeError>;

    /// Like [`solve`](Self::solve), but may fan the independent per-component
    /// subproblems out over up to `threads` workers. The contract is strict:
    /// the returned solution must be **identical** to the sequential one for
    /// every thread count (components are solved independently and merged in
    /// component order). The default implementation is the sequential path.
    fn solve_threaded(
        &self,
        g: &Graph,
        delta: f64,
        threads: usize,
    ) -> Result<PolytopeSolution, PolytopeError> {
        let _ = threads;
        self.solve(g, delta)
    }
}

/// Selects one of the built-in [`PolytopeSolver`] backends by name.
///
/// This is the value carried by estimator configurations: it is `Copy`,
/// comparable and has a stable `Debug` form, while still resolving to a
/// `&'static dyn PolytopeSolver` for dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolverBackend {
    /// Combinatorial reductions with a cutting-plane fallback (the default).
    #[default]
    Combinatorial,
    /// Pure warm-started cutting planes (the reference backend).
    Simplex,
}

static COMBINATORIAL: CombinatorialSolver = CombinatorialSolver::new();
static SIMPLEX: SimplexSolver = SimplexSolver::new();

impl SolverBackend {
    /// The backend instance this selector names.
    pub fn solver(self) -> &'static dyn PolytopeSolver {
        match self {
            SolverBackend::Combinatorial => &COMBINATORIAL,
            SolverBackend::Simplex => &SIMPLEX,
        }
    }
}

/// Shared driver: validates `delta`, splits `g` into connected components and
/// folds per-component solutions (computed by `solve_component`) back into a
/// whole-graph [`PolytopeSolution`].
pub(crate) fn solve_per_component<F>(
    g: &Graph,
    delta: f64,
    mut solve_component: F,
) -> Result<PolytopeSolution, PolytopeError>
where
    F: FnMut(&Graph) -> Result<PolytopeSolution, PolytopeError>,
{
    if delta <= 0.0 || !delta.is_finite() {
        return Err(PolytopeError::InvalidDelta { delta });
    }
    let all_edges = g.edge_vec();
    let edge_index: std::collections::HashMap<(usize, usize), usize> = all_edges
        .iter()
        .copied()
        .enumerate()
        .map(|(i, e)| (e, i))
        .collect();

    let mut total = PolytopeSolution::zero(all_edges.len());
    for comp in components(g) {
        if comp.len() < 2 {
            continue;
        }
        let (local, map) = induced_subgraph(g, &comp);
        if local.has_no_edges() {
            continue;
        }
        let sol = solve_component(&local)?;
        total.absorb_component(&local, &map, sol, &edge_index);
    }
    Ok(total)
}

/// Parallel variant of [`solve_per_component`]: partitions the graph into a
/// component-contiguous CSR arena once, solves the eligible components on a
/// scoped work-stealing map, and absorbs results **in component order** — the
/// exact order the sequential driver uses. Component-local subgraphs from the
/// partition have the same local vertex numbering as `induced_subgraph` on the
/// component's (ascending) vertex set, and `solve_component` is a pure
/// function of the local graph, so the merged solution is bit-for-bit
/// identical to the sequential one for every thread count.
pub(crate) fn solve_per_component_parallel<F>(
    g: &Graph,
    delta: f64,
    threads: usize,
    solve_component: F,
) -> Result<PolytopeSolution, PolytopeError>
where
    F: Fn(&Graph) -> Result<PolytopeSolution, PolytopeError> + Sync,
{
    // Adaptive gate: scoped workers cost more than the whole solve for the
    // tiny graphs the serving tier handles at high QPS, and oversubscribing a
    // small graph with a large budget inverts the speedup. The effective
    // budget depends only on (threads, graph size), so gating and clamping
    // never change output.
    let threads = effective_parallelism(threads, g.num_vertices() + g.num_edges());
    if threads < 2 {
        return solve_per_component(g, delta, solve_component);
    }
    if delta <= 0.0 || !delta.is_finite() {
        return Err(PolytopeError::InvalidDelta { delta });
    }
    let part = CsrGraph::from_graph(g).partition_components();
    let eligible: Vec<usize> = (0..part.num_components())
        .filter(|&c| {
            let view = part.component(c);
            view.num_vertices() >= 2 && view.num_edges() > 0
        })
        .collect();

    let results = parallel_map(threads, eligible.len(), |i| {
        let local = part.component(eligible[i]).to_graph();
        let sol = solve_component(&local);
        (local, sol)
    });

    let all_edges = g.edge_vec();
    let edge_index: std::collections::HashMap<(usize, usize), usize> = all_edges
        .iter()
        .copied()
        .enumerate()
        .map(|(i, e)| (e, i))
        .collect();
    let mut total = PolytopeSolution::zero(all_edges.len());
    for (i, (local, sol)) in results.into_iter().enumerate() {
        let map: Vec<usize> = part
            .component_vertices(eligible[i])
            .iter()
            .map(|&v| v as usize)
            .collect();
        total.absorb_component(&local, &map, sol?, &edge_index);
    }
    Ok(total)
}

/// The reference backend: cutting planes over the warm-started incremental
/// simplex, one LP per connected component (no combinatorial reductions).
///
/// By default each component LP pairs the cutting-plane upper bound with the
/// column-generation lower bound — the same combined engine the combinatorial
/// backend uses on its irreducible cores — so the backend no longer stalls on
/// the rank-bound face of large supercritical cores. The historical
/// pure-cutting-plane behavior remains available through
/// [`SimplexSolver::pure_cutting_planes`] for cross-validating the cut engine
/// in isolation.
#[derive(Clone, Debug)]
pub struct SimplexSolver {
    max_rounds: usize,
    max_cuts_per_round: usize,
    bound_pairing: bool,
}

impl SimplexSolver {
    /// The backend with default limits and column-generation bound pairing.
    pub const fn new() -> Self {
        SimplexSolver {
            max_rounds: cutting_plane::MAX_ROUNDS,
            max_cuts_per_round: cutting_plane::MAX_CUTS_PER_ROUND,
            bound_pairing: true,
        }
    }

    /// The historical reference behavior: cutting planes only, no
    /// column-generation lower bound. Viable on small and medium instances;
    /// can stall on the rank-bound face of large supercritical cores.
    pub const fn pure_cutting_planes() -> Self {
        SimplexSolver {
            max_rounds: cutting_plane::MAX_ROUNDS,
            max_cuts_per_round: cutting_plane::MAX_CUTS_PER_ROUND,
            bound_pairing: false,
        }
    }

    /// Whether this instance pairs cuts with column-generation bounds.
    pub fn bound_pairing(&self) -> bool {
        self.bound_pairing
    }
}

impl Default for SimplexSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl PolytopeSolver for SimplexSolver {
    fn name(&self) -> &'static str {
        if self.bound_pairing {
            "simplex-cutting-planes"
        } else {
            "simplex-pure-cutting-planes"
        }
    }

    fn solve(&self, g: &Graph, delta: f64) -> Result<PolytopeSolution, PolytopeError> {
        solve_per_component(g, delta, |local| self.solve_local(local, delta))
    }

    fn solve_threaded(
        &self,
        g: &Graph,
        delta: f64,
        threads: usize,
    ) -> Result<PolytopeSolution, PolytopeError> {
        solve_per_component_parallel(g, delta, threads, |local| self.solve_local(local, delta))
    }
}

impl SimplexSolver {
    fn solve_local(&self, local: &Graph, delta: f64) -> Result<PolytopeSolution, PolytopeError> {
        let caps = vec![delta; local.num_vertices()];
        if self.bound_pairing {
            crate::column_generation::solve_component_with_caps(local, &caps)
        } else {
            cutting_plane::solve_component_with_caps(
                local,
                &caps,
                self.max_rounds,
                self.max_cuts_per_round,
            )
        }
    }
}

pub use crate::combinatorial::CombinatorialSolver;
