//! The combinatorial backend for the Δ-bounded forest polytope.
//!
//! The degree-bounded forest LP inherits a lot of structure from the graphic
//! matroid, and most of a real graph can be solved exactly *without an LP* by
//! chaining certified combinatorial reductions. Each reduction either carries
//! an exchange-argument proof (some optimal solution agrees with it) or a
//! matching upper-bound certificate (the produced point attains a valid bound),
//! so the backend as a whole returns the exact LP optimum:
//!
//! 1. **Exhausted-vertex elimination.** A vertex whose residual capacity is 0
//!    forces weight 0 on all its edges; delete it. (Certificate: the degree
//!    constraint `x(δ(v)) ≤ 0` plus `x ≥ 0`.)
//! 2. **Fractional leaf peeling with δ-capping.** For a leaf `v` with
//!    neighbor `u` and residual capacities `c_v, c_u`, some optimal solution
//!    has `x_uv = min(1, c_v, c_u)`: no forest constraint through a leaf can
//!    be tight while `x_uv < 1` (removing `v` from a tight set would violate
//!    the set's own constraint), so the only binding structure is `δ(u)` —
//!    and weight can be shifted from another `u`-edge without loss. Peel `v`,
//!    charge `u`'s capacity, repeat. On supercritical Erdős–Rényi graphs this
//!    dissolves everything outside the 2-core.
//! 3. **Kruskal-style capped greedy.** On a remaining core piece, grow a
//!    forest over the graphic matroid taking any edge whose endpoints both
//!    have ≥ 1 unit of residual (floored) capacity. If the forest spans the
//!    piece, weight-1 edges attain the rank bound `x(E) ≤ |S| − 1` — optimal.
//! 4. **Local-repair spanning forest (Lemma 1.8, capacity-generalized).**
//!    Where the plain greedy fails, the paper's local-repair construction —
//!    generalized to per-vertex capacities as
//!    [`capacity_bounded_spanning_forest`] — searches much harder for a
//!    capacity-respecting spanning forest; any forest it returns is a
//!    genuine optimality certificate.
//! 5. **Column-generation fallback.** Whatever survives — the genuinely
//!    fractional core of the instance — goes to exact Dantzig–Wolfe column
//!    generation over forests (tiny master LPs priced by Kruskal's greedy;
//!    see [`crate::column_generation`]), with the peeled capacities as
//!    per-vertex bounds.
//!
//! The solution assembled from peeled edges and core solutions is feasible
//! for the *original* polytope: peeled edges form a forest with per-edge
//! weight ≤ 1, and adding a ≤ 1-weight leaf edge to a feasible point can
//! violate no forest constraint (`x(E[S]) ≤ x(E[S∖v]) + 1 ≤ |S| − 1`).

use crate::column_generation;
use crate::solver::{solve_per_component, PolytopeError, PolytopeSolution, PolytopeSolver};
use ccdp_graph::components::components;
use ccdp_graph::forest::capacity_bounded_spanning_forest;
use ccdp_graph::subgraph::induced_subgraph;
use ccdp_graph::unionfind::UnionFind;
use ccdp_graph::Graph;
use std::collections::HashMap;

/// Residual capacities at or below this are treated as exhausted.
pub(crate) const CAP_TOL: f64 = 1e-9;

/// Graph-algorithm-speed exact solver: certified combinatorial reductions
/// with a column-generation fallback for the irreducible core.
#[derive(Clone, Debug)]
pub struct CombinatorialSolver {
    _private: (),
}

impl CombinatorialSolver {
    /// The backend with default settings.
    pub const fn new() -> Self {
        CombinatorialSolver { _private: () }
    }

    /// Solves one connected component (local vertex indices, ≥ 1 edge).
    ///
    /// Crate-visible so the micro-component driver ([`crate::micro`]) can use
    /// it as the general fallback and equivalence oracle.
    pub(crate) fn solve_component(
        &self,
        g: &Graph,
        delta: f64,
    ) -> Result<PolytopeSolution, PolytopeError> {
        let n = g.num_vertices();
        let edges = g.edge_vec();
        let m = edges.len();

        // Adjacency as (neighbor, edge index) pairs.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (i, &(a, b)) in edges.iter().enumerate() {
            adj[a].push((b, i));
            adj[b].push((a, i));
        }

        let mut caps = vec![delta; n];
        let mut alive = vec![true; n];
        let mut edge_alive = vec![true; m];
        let mut weights = vec![0.0f64; m];
        let mut deg: Vec<usize> = (0..n).map(|v| adj[v].len()).collect();

        // Reductions 1 + 2: eliminate exhausted vertices, peel leaves.
        let mut work: Vec<usize> = (0..n).collect();
        while let Some(v) = work.pop() {
            if !alive[v] {
                continue;
            }
            if caps[v] <= CAP_TOL {
                // Exhausted: all incident edges are forced to 0.
                for &(u, e) in &adj[v] {
                    if edge_alive[e] {
                        edge_alive[e] = false;
                        deg[u] -= 1;
                        deg[v] -= 1;
                        work.push(u);
                    }
                }
                alive[v] = false;
            } else if deg[v] == 0 {
                alive[v] = false;
            } else if deg[v] == 1 {
                let &(u, e) = adj[v]
                    .iter()
                    .find(|&&(_, e)| edge_alive[e])
                    .expect("degree-1 vertex has an alive edge");
                let w = 1.0f64.min(caps[v]).min(caps[u]).max(0.0);
                weights[e] = w;
                caps[u] -= w;
                edge_alive[e] = false;
                deg[u] -= 1;
                deg[v] = 0;
                alive[v] = false;
                work.push(u);
            }
        }

        // Extract the surviving core and solve each of its pieces.
        let alive_vertices: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
        let mut generated_cuts = 0;
        let mut lp_iterations = 0;
        let mut lp_solves = 0;
        let mut lp_fallback_components = 0;

        if !alive_vertices.is_empty() {
            let edge_index: HashMap<(usize, usize), usize> = edges
                .iter()
                .copied()
                .enumerate()
                .map(|(i, e)| (e, i))
                .collect();
            let (core, core_map) = induced_subgraph(g, &alive_vertices);
            for piece_vertices in components(&core) {
                if piece_vertices.len() < 2 {
                    continue;
                }
                let (piece, piece_map) = induced_subgraph(&core, &piece_vertices);
                if piece.has_no_edges() {
                    continue;
                }
                // Capacities and edge-index mapping in component coordinates.
                let to_component = |local: usize| core_map[piece_map[local]];
                let piece_caps: Vec<f64> = (0..piece.num_vertices())
                    .map(|local| caps[to_component(local)])
                    .collect();
                let piece_edges = piece.edge_vec();
                let component_edge = |&(a, b): &(usize, usize)| {
                    let (ga, gb) = (to_component(a), to_component(b));
                    let key = if ga < gb { (ga, gb) } else { (gb, ga) };
                    edge_index[&key]
                };

                if let Some(forest_edges) = spanning_certificate(&piece, &piece_caps) {
                    // Reductions 3 / 4 succeeded: the rank bound is attained.
                    for &(a, b) in &forest_edges {
                        let key = if a < b { (a, b) } else { (b, a) };
                        weights[component_edge(&key)] = 1.0;
                    }
                } else {
                    let sol = column_generation::solve_component_with_caps(&piece, &piece_caps)?;
                    generated_cuts += sol.generated_cuts;
                    lp_iterations += sol.lp_iterations;
                    lp_solves += sol.lp_solves;
                    lp_fallback_components += 1;
                    for (local_edge, w) in piece_edges.iter().zip(sol.edge_weights) {
                        weights[component_edge(local_edge)] = w;
                    }
                }
            }
        }

        Ok(PolytopeSolution {
            value: weights.iter().sum(),
            edge_weights: weights,
            generated_cuts,
            lp_iterations,
            lp_solves,
            lp_fallback_components,
        })
    }
}

impl Default for CombinatorialSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl PolytopeSolver for CombinatorialSolver {
    fn name(&self) -> &'static str {
        "combinatorial-forest"
    }

    fn solve(&self, g: &Graph, delta: f64) -> Result<PolytopeSolution, PolytopeError> {
        solve_per_component(g, delta, |local| self.solve_component(local, delta))
    }

    fn solve_threaded(
        &self,
        g: &Graph,
        delta: f64,
        threads: usize,
    ) -> Result<PolytopeSolution, PolytopeError> {
        crate::solver::solve_per_component_parallel(g, delta, threads, |local| {
            self.solve_component(local, delta)
        })
    }
}

/// Tries to certify that the optimum of a connected core piece is its rank
/// bound `|V| − 1` by exhibiting a spanning forest whose every vertex degree
/// fits the (floored) residual capacity. Returns the forest's edge list
/// (piece-local endpoints) on success.
///
/// Three attempts: a capped Kruskal-style greedy over the graphic matroid
/// (cheap, order-sensitive), then the local-repair construction of Lemma 1.8
/// generalized to per-vertex capacities
/// ([`capacity_bounded_spanning_forest`]), which recovers the many instances
/// where a fixed greedy order paints itself into a corner, and finally — for
/// pieces small enough to search exhaustively — a complete branch-and-prune
/// over edge subsets ([`tiny_exhaustive_certificate`]), which is decisive
/// where the local-repair heuristic gives up even though a certificate
/// exists.
///
/// Shared by the general component solver and the micro-component fast paths,
/// so both produce identical certificates on identical pieces.
pub(crate) fn spanning_certificate(piece: &Graph, caps: &[f64]) -> Option<Vec<(usize, usize)>> {
    let n = piece.num_vertices();
    let target = n - 1; // the piece is connected
    let icaps: Vec<usize> = caps
        .iter()
        .map(|&c| (c + CAP_TOL).floor() as usize)
        .collect();
    if icaps.iter().any(|&c| c < 1) {
        return None;
    }
    if icaps.iter().sum::<usize>() < 2 * target {
        // Degree sum of any spanning tree is 2(n − 1); caps cannot carry it.
        return None;
    }
    let mut greedy_caps = icaps.clone();
    let mut uf = UnionFind::new(n);
    let mut chosen = Vec::with_capacity(target);
    for (a, b) in piece.edges() {
        if greedy_caps[a] >= 1 && greedy_caps[b] >= 1 && uf.union(a, b) {
            greedy_caps[a] -= 1;
            greedy_caps[b] -= 1;
            chosen.push((a, b));
            if chosen.len() == target {
                return Some(chosen);
            }
        }
    }
    // Greedy failed; the insertion-with-local-repairs procedure searches much
    // harder for a capacity-respecting spanning forest.
    if let Some(forest) = capacity_bounded_spanning_forest(piece, &icaps)
        .filter(|forest| forest.num_edges() == target)
    {
        return Some(forest.edges().to_vec());
    }
    tiny_exhaustive_certificate(piece, &icaps)
}

/// Pieces at most this large go through the complete exhaustive search when
/// both heuristic certificate attempts fail.
const TINY_DP_MAX_VERTICES: usize = 10;
const TINY_DP_MAX_EDGES: usize = 24;
/// Branch-node budget: the search is abandoned (fall through to the LP) if
/// pruning is not biting. Purely a cost guard — abandoning is always sound.
const TINY_DP_NODE_BUDGET: usize = 200_000;

/// Complete include/exclude search for a capacity-respecting spanning tree of
/// a connected piece with ≤ [`TINY_DP_MAX_VERTICES`] vertices. Either returns
/// a genuine certificate, proves none exists, or runs out of budget — in the
/// latter two cases the caller falls back to the exact LP, so the overall
/// backend stays exact.
fn tiny_exhaustive_certificate(piece: &Graph, icaps: &[usize]) -> Option<Vec<(usize, usize)>> {
    let n = piece.num_vertices();
    let edges = piece.edge_vec();
    let m = edges.len();
    if n > TINY_DP_MAX_VERTICES || m > TINY_DP_MAX_EDGES {
        return None;
    }
    let target = n - 1;

    struct Search<'a> {
        edges: &'a [(usize, usize)],
        target: usize,
        budget: usize,
        chosen: Vec<(usize, usize)>,
    }

    impl Search<'_> {
        /// `parent` is a flat union-find (path halving unnecessary at n ≤ 10);
        /// cloned per include-branch so exclude-backtracking is trivial.
        fn go(&mut self, i: usize, parent: &mut [usize], caps: &mut [usize]) -> bool {
            if self.chosen.len() == self.target {
                return true;
            }
            if i >= self.edges.len() || self.edges.len() - i < self.target - self.chosen.len() {
                return false;
            }
            if self.budget == 0 {
                return false;
            }
            self.budget -= 1;
            let (a, b) = self.edges[i];
            let (ra, rb) = (root(parent, a), root(parent, b));
            if ra != rb && caps[a] >= 1 && caps[b] >= 1 {
                // Include branch.
                let mut p2 = parent.to_vec();
                p2[ra] = rb;
                caps[a] -= 1;
                caps[b] -= 1;
                self.chosen.push((a, b));
                if self.go(i + 1, &mut p2, caps) {
                    return true;
                }
                self.chosen.pop();
                caps[a] += 1;
                caps[b] += 1;
            }
            // Exclude branch.
            self.go(i + 1, parent, caps)
        }
    }

    fn root(parent: &[usize], mut v: usize) -> usize {
        while parent[v] != v {
            v = parent[v];
        }
        v
    }

    let mut search = Search {
        edges: &edges,
        target,
        budget: TINY_DP_NODE_BUDGET,
        chosen: Vec::with_capacity(target),
    };
    let mut parent: Vec<usize> = (0..n).collect();
    let mut caps = icaps.to_vec();
    if search.go(0, &mut parent, &mut caps) {
        Some(search.chosen)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    fn value(g: &Graph, delta: f64) -> f64 {
        CombinatorialSolver::new().solve(g, delta).unwrap().value
    }

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn star_peels_to_exact_fractional_value() {
        // K_{1,5}: leaves peel one by one, charging the center's capacity;
        // f_Δ = min(Δ, 5) including fractional Δ — all without any LP.
        let g = generators::star(5);
        for delta in [0.5, 1.0, 2.5, 3.0, 4.9, 5.0, 7.0] {
            let sol = CombinatorialSolver::new().solve(&g, delta).unwrap();
            assert!(
                approx(sol.value, delta.min(5.0)),
                "star f_{delta} = {}",
                sol.value
            );
            assert_eq!(sol.lp_fallback_components, 0, "star must not need the LP");
        }
    }

    #[test]
    fn path_is_fully_peeled() {
        let g = generators::path(7);
        let sol = CombinatorialSolver::new().solve(&g, 2.0).unwrap();
        assert!(approx(sol.value, 6.0));
        assert_eq!(sol.lp_fallback_components, 0);
    }

    #[test]
    fn triangle_core_falls_back_to_lp() {
        let g = generators::cycle(3);
        let sol = CombinatorialSolver::new().solve(&g, 1.0).unwrap();
        assert!(approx(sol.value, 1.5), "triangle f_1 = {}", sol.value);
        assert_eq!(sol.lp_fallback_components, 1);
    }

    #[test]
    fn complete_graph_spanning_certificate_avoids_lp() {
        // K_6 with Δ = 2 has a Hamiltonian path; the repair construction (or
        // the greedy) certifies the rank bound without an LP.
        let g = generators::complete(6);
        let sol = CombinatorialSolver::new().solve(&g, 2.0).unwrap();
        assert!(approx(sol.value, 5.0));
        assert_eq!(sol.lp_fallback_components, 0);
    }

    #[test]
    fn pendant_trees_peel_and_core_solves() {
        // A triangle with a pendant path: the path peels at weight 1, the
        // triangle is the core.
        let mut g = generators::cycle(3);
        for _ in 0..3 {
            g.add_vertex();
        }
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        // Δ = 2: spanning 2-forest exists (path around the triangle plus the
        // pendant path), so the whole thing is certified at f_sf = 5.
        assert!(approx(value(&g, 2.0), 5.0));
        // Δ = 1: pendant edges peel 5–4 at 1, then 3 has cap 0 … the exact
        // value must match the reference backend; spot-check feasibility-level
        // sanity here (cross-backend equality is proptested separately).
        let sol = CombinatorialSolver::new().solve(&g, 1.0).unwrap();
        assert!(sol.value <= 3.0 + 1e-9);
        assert!(sol.value >= 2.0 - 1e-9);
    }

    #[test]
    fn exhausted_vertices_disconnect_the_core() {
        // Two triangles joined through a middle vertex of capacity Δ = 1:
        // peeling never fires (no leaves), both triangles go fractional.
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(2, 4);
        let sol = CombinatorialSolver::new().solve(&g, 1.0).unwrap();
        // Fractional matching bound: vertex 2 is shared; optimum is 2.5
        // (e.g. one full edge in each triangle giving 2, plus a half cycle —
        // exact value pinned by the cross-backend proptest; sanity bounds
        // here).
        assert!(sol.value <= 2.5 + 1e-6);
        assert!(sol.value >= 2.0 - 1e-9);
    }

    #[test]
    fn weights_are_within_unit_box_and_caps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        for _ in 0..10 {
            let g = generators::erdos_renyi(14, 0.25, &mut rng);
            for delta in [0.7, 1.0, 2.0, 3.5] {
                let sol = CombinatorialSolver::new().solve(&g, delta).unwrap();
                let edges = g.edge_vec();
                for &w in &sol.edge_weights {
                    assert!((-1e-9..=1.0 + 1e-9).contains(&w));
                }
                for v in g.vertices() {
                    let load: f64 = edges
                        .iter()
                        .zip(&sol.edge_weights)
                        .filter(|(&(a, b), _)| a == v || b == v)
                        .map(|(_, &w)| w)
                        .sum();
                    assert!(load <= delta + 1e-6, "degree cap violated at {v}");
                }
                assert!(approx(sol.edge_weights.iter().sum::<f64>(), sol.value));
            }
        }
    }
}
