//! Micro-component fast paths and isomorphism-class solve dedup over a
//! component-contiguous CSR partition.
//!
//! On the barely-supercritical workloads the scale tier targets, a graph with
//! 10⁶ vertices decomposes into ~476k components that are overwhelmingly tiny
//! trees and unicyclic graphs — exactly the structures for which the
//! Δ-bounded forest-polytope maximum has a closed form. The general
//! [`CombinatorialSolver`] already solves each of them quickly, but pays a
//! fixed per-component toll (materializing an adjacency-list [`Graph`],
//! half a dozen allocations, a `HashMap` for the remnant phase) that
//! dominates once components are this small and this numerous.
//!
//! This module removes that toll while keeping the results **bit-for-bit
//! identical** to the general solver:
//!
//! * [`solve_partition`] — the driver: solves every component of a
//!   [`ComponentPartition`] (sequentially or on a work-stealing fan-out,
//!   merging in component order either way) with reusable scratch buffers.
//! * **Micro solver** — for trees, unicyclic components and anything with at
//!   most [`MICRO_TINY_VERTICES`] vertices, a CSR-native replica of the
//!   general solver's reduction loop (same float operations in the same
//!   order), with two provably-identical closed-form short-circuits:
//!   a tree whose maximum degree is ≤ Δ gets all-ones weights (every leaf
//!   peel charges exactly 1.0), and a remnant cycle whose floored caps are
//!   all ≥ 2 keeps its first `k − 1` canonical edges (the capped greedy
//!   accepts exactly those). Remnant pieces that fit neither case are
//!   materialized and sent through the *same* [`spanning_certificate`] /
//!   column-generation tail as the general solver, so the weight vector —
//!   and hence the value, summed in the same edge order — is identical by
//!   construction.
//! * **Solve dedup** — components with at most [`DEDUP_MAX_VERTICES`]
//!   vertices are keyed by their exact labeled CSR slice (size, degree
//!   sequence, neighbor lists) behind a hash; a hit must pass a full witness
//!   comparison (the cache-layer `matches_graph` discipline) before its
//!   stored solution is reused, so two components share a solve only when
//!   they are *identical as labeled graphs* — a safe subset of isomorphism;
//!   any hash collision fails the witness check and forces a solo solve. On
//!   ER at p = 1.05/n the labeled-class count is a few hundred versus ~476k
//!   components, so nearly every solve becomes a lookup.

use crate::column_generation;
use crate::combinatorial::{spanning_certificate, CombinatorialSolver, CAP_TOL};
use crate::solver::{PolytopeError, PolytopeSolution};
use ccdp_exec::{effective_parallelism, parallel_map};
use ccdp_graph::{ComponentPartition, CsrComponent, Graph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Components with more vertices than this and more than `n` edges are not
/// micro-eligible (trees and unicyclic components of any size always are).
pub const MICRO_TINY_VERTICES: usize = 24;

/// Components with at most this many vertices participate in solve dedup.
pub const DEDUP_MAX_VERTICES: usize = 32;

/// Knobs for [`solve_partition`]. Both fast paths default to on; turning
/// either off changes cost only — never values (`micro` replicates the
/// general solver bit-for-bit, `dedup` reuses solutions only across
/// identical labeled slices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveOptions {
    /// Enable the micro-component fast paths.
    pub micro: bool,
    /// Enable isomorphism-class (labeled-slice) solve dedup.
    pub dedup: bool,
    /// Assemble per-edge weights in arena edge order. The family evaluation
    /// only needs values; skipping assembly saves one `f64` per edge per Δ.
    pub want_weights: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            micro: true,
            dedup: true,
            want_weights: true,
        }
    }
}

/// Where each component's solution came from, aggregated over one
/// [`solve_partition`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionSolveStats {
    /// Components actually solved or served from dedup (≥ 2 vertices, ≥ 1 edge).
    pub components: usize,
    /// Micro solves that never materialized a remnant piece (closed forms).
    pub micro_closed_form: usize,
    /// Micro solves whose remnant went through the shared certificate/LP tail.
    pub micro_reduced: usize,
    /// Components handed to the general [`CombinatorialSolver`].
    pub general_fallback: usize,
    /// Distinct labeled classes inserted into the dedup table.
    pub dedup_classes: usize,
    /// Solves served from the dedup table.
    pub dedup_hits: usize,
}

/// Result of [`solve_partition`]: the merged polytope solution (weights in
/// *arena* edge order when requested, empty otherwise) plus attribution
/// counters.
#[derive(Clone, Debug)]
pub struct PartitionSolution {
    /// Merged solution; `edge_weights` is indexed like the arena's canonical
    /// edge order (component-contiguous) and empty when
    /// [`SolveOptions::want_weights`] is off.
    pub solution: PolytopeSolution,
    /// Per-path attribution.
    pub stats: PartitionSolveStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SolveKind {
    MicroClosedForm,
    MicroReduced,
    General,
}

/// One component's solution in local (component) edge order.
#[derive(Clone, Debug)]
struct CompSolution {
    weights: Vec<f64>,
    value: f64,
    generated_cuts: usize,
    lp_iterations: usize,
    lp_solves: usize,
    lp_fallback_components: usize,
    kind: SolveKind,
}

impl CompSolution {
    fn from_general(sol: PolytopeSolution) -> Self {
        CompSolution {
            value: sol.value,
            weights: sol.edge_weights,
            generated_cuts: sol.generated_cuts,
            lp_iterations: sol.lp_iterations,
            lp_solves: sol.lp_solves,
            lp_fallback_components: sol.lp_fallback_components,
            kind: SolveKind::General,
        }
    }
}

/// Solves every component of a partition and merges values **in component
/// order** — the exact order the sequential per-component driver uses — so
/// the result is identical for every thread budget and for every
/// [`SolveOptions`] combination.
pub fn solve_partition(
    part: &ComponentPartition,
    delta: f64,
    threads: usize,
    opts: &SolveOptions,
) -> Result<PartitionSolution, PolytopeError> {
    if delta <= 0.0 || !delta.is_finite() {
        return Err(PolytopeError::InvalidDelta { delta });
    }
    let arena = part.arena();
    let num_edges = arena.num_edges();

    // Eligible components plus their arena-edge offsets (components are
    // edge-contiguous in the arena, so offsets are a running prefix sum).
    let mut eligible: Vec<(usize, usize)> = Vec::new();
    let mut edge_cursor = 0usize;
    for c in 0..part.num_components() {
        let view = part.component(c);
        let m = view.num_edges();
        if view.num_vertices() >= 2 && m > 0 {
            eligible.push((c, edge_cursor));
        }
        edge_cursor += m;
    }
    debug_assert_eq!(edge_cursor, num_edges);

    let dedup = opts.dedup.then(DedupTable::new);
    let scratch_pool: Mutex<Vec<MicroScratch>> = Mutex::new(Vec::new());

    let run_one = |i: usize| -> Result<(Arc<CompSolution>, bool), PolytopeError> {
        let view = part.component(eligible[i].0);
        let mut scratch = scratch_pool
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default();
        let out = solve_component_view(&view, delta, opts.micro, dedup.as_ref(), &mut scratch);
        scratch_pool
            .lock()
            .expect("scratch pool lock")
            .push(scratch);
        out
    };

    let work = arena.num_vertices() + num_edges;
    let eff = effective_parallelism(threads, work);
    let results: Vec<Result<(Arc<CompSolution>, bool), PolytopeError>> = if eff >= 2 {
        parallel_map(eff, eligible.len(), run_one)
    } else {
        (0..eligible.len()).map(run_one).collect()
    };

    let mut solution = PolytopeSolution::zero(if opts.want_weights { num_edges } else { 0 });
    let mut stats = PartitionSolveStats {
        components: eligible.len(),
        ..PartitionSolveStats::default()
    };
    for (i, result) in results.into_iter().enumerate() {
        let (sol, dedup_hit) = result?;
        solution.value += sol.value;
        solution.generated_cuts += sol.generated_cuts;
        solution.lp_iterations += sol.lp_iterations;
        solution.lp_solves += sol.lp_solves;
        solution.lp_fallback_components += sol.lp_fallback_components;
        if dedup_hit {
            stats.dedup_hits += 1;
        } else {
            match sol.kind {
                SolveKind::MicroClosedForm => stats.micro_closed_form += 1,
                SolveKind::MicroReduced => stats.micro_reduced += 1,
                SolveKind::General => stats.general_fallback += 1,
            }
        }
        if opts.want_weights {
            let off = eligible[i].1;
            solution.edge_weights[off..off + sol.weights.len()].copy_from_slice(&sol.weights);
        }
    }
    if let Some(table) = dedup {
        stats.dedup_classes = table.classes.load(Ordering::Relaxed);
    }
    Ok(PartitionSolution { solution, stats })
}

fn solve_component_view(
    view: &CsrComponent<'_>,
    delta: f64,
    micro: bool,
    dedup: Option<&DedupTable>,
    scratch: &mut MicroScratch,
) -> Result<(Arc<CompSolution>, bool), PolytopeError> {
    let n = view.num_vertices();
    if let Some(table) = dedup.filter(|_| n <= DEDUP_MAX_VERTICES) {
        scratch.key_buf.clear();
        encode_labeled_slice(view, &mut scratch.key_buf);
        let hash = fnv1a_64(&scratch.key_buf);
        if let Some(hit) = table.lookup(hash, &scratch.key_buf) {
            return Ok((hit, true));
        }
        let sol = Arc::new(solve_component_dispatch(view, delta, micro, scratch)?);
        let key = scratch.key_buf.clone();
        table.insert(hash, key, Arc::clone(&sol));
        return Ok((sol, false));
    }
    Ok((
        Arc::new(solve_component_dispatch(view, delta, micro, scratch)?),
        false,
    ))
}

fn solve_component_dispatch(
    view: &CsrComponent<'_>,
    delta: f64,
    micro: bool,
    scratch: &mut MicroScratch,
) -> Result<CompSolution, PolytopeError> {
    let n = view.num_vertices();
    let m = view.num_edges();
    if micro && (m <= n || n <= MICRO_TINY_VERTICES) {
        micro_solve(view, delta, scratch)
    } else {
        let local = view.to_graph();
        CombinatorialSolver::new()
            .solve_component(&local, delta)
            .map(CompSolution::from_general)
    }
}

// ---------------------------------------------------------------------------
// Micro solver: CSR-native replica of `CombinatorialSolver::solve_component`.
// ---------------------------------------------------------------------------

/// Reusable buffers for one micro solve; pooled across components so the hot
/// loop performs no allocation for the (overwhelmingly common) tree and
/// unicyclic cases.
#[derive(Default)]
struct MicroScratch {
    adj_off: Vec<u32>,
    adj_nbr: Vec<u32>,
    adj_eid: Vec<u32>,
    caps: Vec<f64>,
    alive: Vec<bool>,
    edge_alive: Vec<bool>,
    deg: Vec<u32>,
    work: Vec<u32>,
    label: Vec<u32>,
    stack: Vec<u32>,
    key_buf: Vec<u32>,
}

fn micro_solve(
    view: &CsrComponent<'_>,
    delta: f64,
    s: &mut MicroScratch,
) -> Result<CompSolution, PolytopeError> {
    let n = view.num_vertices();
    let m = view.num_edges();

    // Closed form: a tree whose maximum degree fits Δ peels entirely at
    // weight exactly 1.0 (every peel sees caps ≥ 1), so the general solver's
    // weight vector is all ones and its value the exact integer n − 1.
    if m == n - 1 {
        let max_deg = (0..n).map(|v| view.degree(v)).max().unwrap_or(0);
        if delta >= max_deg as f64 {
            return Ok(CompSolution {
                weights: vec![1.0; m],
                value: (n - 1) as f64,
                generated_cuts: 0,
                lp_iterations: 0,
                lp_solves: 0,
                lp_fallback_components: 0,
                kind: SolveKind::MicroClosedForm,
            });
        }
    }

    // --- Scratch setup: local CSR copy with canonical edge ids. -----------
    s.adj_off.clear();
    s.adj_off.reserve(n + 1);
    s.adj_off.push(0);
    s.adj_nbr.clear();
    s.adj_nbr.reserve(2 * m);
    for v in 0..n {
        for w in view.neighbors(v) {
            s.adj_nbr.push(w as u32);
        }
        s.adj_off.push(s.adj_nbr.len() as u32);
    }
    s.adj_eid.clear();
    s.adj_eid.resize(2 * m, 0);
    let row = |off: &[u32], v: usize| (off[v] as usize, off[v + 1] as usize);
    {
        let mut e = 0u32;
        for u in 0..n {
            let (lo, hi) = row(&s.adj_off, u);
            for j in lo..hi {
                let w = s.adj_nbr[j] as usize;
                if w > u {
                    s.adj_eid[j] = e;
                    let (wlo, whi) = row(&s.adj_off, w);
                    let pos = s.adj_nbr[wlo..whi]
                        .binary_search(&(u as u32))
                        .expect("reverse half-edge present");
                    s.adj_eid[wlo + pos] = e;
                    e += 1;
                }
            }
        }
        debug_assert_eq!(e as usize, m);
    }

    s.caps.clear();
    s.caps.resize(n, delta);
    s.alive.clear();
    s.alive.resize(n, true);
    s.edge_alive.clear();
    s.edge_alive.resize(m, true);
    s.deg.clear();
    s.deg.extend((0..n).map(|v| view.degree(v) as u32));
    let mut weights = vec![0.0f64; m];

    // --- Reductions 1 + 2, mirroring the general solver operation by
    // operation (same work-stack order, same float arithmetic). ------------
    s.work.clear();
    s.work.extend(0..n as u32);
    while let Some(v) = s.work.pop() {
        let v = v as usize;
        if !s.alive[v] {
            continue;
        }
        if s.caps[v] <= CAP_TOL {
            let (lo, hi) = row(&s.adj_off, v);
            for j in lo..hi {
                let e = s.adj_eid[j] as usize;
                if s.edge_alive[e] {
                    let u = s.adj_nbr[j] as usize;
                    s.edge_alive[e] = false;
                    s.deg[u] -= 1;
                    s.deg[v] -= 1;
                    s.work.push(u as u32);
                }
            }
            s.alive[v] = false;
        } else if s.deg[v] == 0 {
            s.alive[v] = false;
        } else if s.deg[v] == 1 {
            let (lo, hi) = row(&s.adj_off, v);
            let j = (lo..hi)
                .find(|&j| s.edge_alive[s.adj_eid[j] as usize])
                .expect("degree-1 vertex has an alive edge");
            let (u, e) = (s.adj_nbr[j] as usize, s.adj_eid[j] as usize);
            let w = 1.0f64.min(s.caps[v]).min(s.caps[u]).max(0.0);
            weights[e] = w;
            s.caps[u] -= w;
            s.edge_alive[e] = false;
            s.deg[u] -= 1;
            s.deg[v] = 0;
            s.alive[v] = false;
            s.work.push(u as u32);
        }
    }

    // --- Remnant pieces, in the same order (by smallest vertex) and local
    // labeling (ascending) the general solver's induced-subgraph path uses.
    let mut generated_cuts = 0;
    let mut lp_iterations = 0;
    let mut lp_solves = 0;
    let mut lp_fallback_components = 0;
    let mut materialized_any = false;

    s.label.clear();
    s.label.resize(n, u32::MAX);
    let mut next_label = 0u32;
    for start in 0..n {
        if !s.alive[start] || s.label[start] != u32::MAX {
            continue;
        }
        // Collect one piece (DFS over alive edges), then process it.
        s.stack.clear();
        s.stack.push(start as u32);
        s.label[start] = next_label;
        let mut piece: Vec<u32> = vec![start as u32];
        while let Some(v) = s.stack.pop() {
            let (lo, hi) = row(&s.adj_off, v as usize);
            for j in lo..hi {
                if !s.edge_alive[s.adj_eid[j] as usize] {
                    continue;
                }
                let w = s.adj_nbr[j];
                if s.label[w as usize] == u32::MAX {
                    s.label[w as usize] = next_label;
                    s.stack.push(w);
                    piece.push(w);
                }
            }
        }
        next_label += 1;
        if piece.len() < 2 {
            continue;
        }
        piece.sort_unstable();
        materialized_any |= solve_remnant_piece(
            s,
            &piece,
            &mut weights,
            &mut generated_cuts,
            &mut lp_iterations,
            &mut lp_solves,
            &mut lp_fallback_components,
        )?;
    }

    Ok(CompSolution {
        value: weights.iter().sum(),
        weights,
        generated_cuts,
        lp_iterations,
        lp_solves,
        lp_fallback_components,
        kind: if materialized_any {
            SolveKind::MicroReduced
        } else {
            SolveKind::MicroClosedForm
        },
    })
}

/// Solves one remnant piece (component-local vertex ids, sorted ascending),
/// writing weights into the component's weight vector. Returns whether the
/// piece had to be materialized as a `Graph` (vs the cycle closed form).
#[allow(clippy::too_many_arguments)]
fn solve_remnant_piece(
    s: &mut MicroScratch,
    piece: &[u32],
    weights: &mut [f64],
    generated_cuts: &mut usize,
    lp_iterations: &mut usize,
    lp_solves: &mut usize,
    lp_fallback_components: &mut usize,
) -> Result<bool, PolytopeError> {
    let row = |off: &[u32], v: usize| (off[v] as usize, off[v + 1] as usize);

    // Closed form: a remnant cycle whose floored caps are all ≥ 2. The capped
    // greedy inside `spanning_certificate` accepts the first k − 1 canonical
    // edges (any proper subset of cycle edges is acyclic; no cap below 2 ever
    // gates) and rejects the last, so the general solver's weights are 1.0
    // everywhere except the final canonical edge — written here directly.
    let is_cycle = piece
        .iter()
        .all(|&v| s.deg[v as usize] == 2 && (s.caps[v as usize] + CAP_TOL).floor() >= 2.0);
    if is_cycle {
        let mut last_eid = None;
        for &u in piece {
            let (lo, hi) = row(&s.adj_off, u as usize);
            for j in lo..hi {
                let e = s.adj_eid[j] as usize;
                if s.edge_alive[e] && s.adj_nbr[j] > u {
                    weights[e] = 1.0;
                    last_eid = Some(e);
                }
            }
        }
        if let Some(e) = last_eid {
            weights[e] = 0.0;
        }
        return Ok(false);
    }

    // General tail: materialize the piece with ascending local ids (the same
    // labeling `induced_subgraph` produces) and run the shared certificate /
    // column-generation chain.
    let k = piece.len();
    // Reuse `stack` as the component-local → piece-local rank map.
    for (rank, &v) in piece.iter().enumerate() {
        if s.stack.len() <= v as usize {
            s.stack.resize(v as usize + 1, 0);
        }
        s.stack[v as usize] = rank as u32;
    }
    let mut piece_edges: Vec<(usize, usize)> = Vec::new();
    let mut piece_eids: Vec<u32> = Vec::new();
    for &u in piece {
        let (lo, hi) = row(&s.adj_off, u as usize);
        for j in lo..hi {
            let e = s.adj_eid[j] as usize;
            if s.edge_alive[e] && s.adj_nbr[j] > u {
                piece_edges.push((
                    s.stack[u as usize] as usize,
                    s.stack[s.adj_nbr[j] as usize] as usize,
                ));
                piece_eids.push(e as u32);
            }
        }
    }
    let local = Graph::from_edges(k, &piece_edges);
    let piece_caps: Vec<f64> = piece.iter().map(|&v| s.caps[v as usize]).collect();

    if let Some(forest_edges) = spanning_certificate(&local, &piece_caps) {
        let eid_of: HashMap<(usize, usize), u32> = piece_edges
            .iter()
            .copied()
            .zip(piece_eids.iter().copied())
            .collect();
        for &(a, b) in &forest_edges {
            let key = if a < b { (a, b) } else { (b, a) };
            weights[eid_of[&key] as usize] = 1.0;
        }
    } else {
        let sol = column_generation::solve_component_with_caps(&local, &piece_caps)?;
        *generated_cuts += sol.generated_cuts;
        *lp_iterations += sol.lp_iterations;
        *lp_solves += sol.lp_solves;
        *lp_fallback_components += 1;
        for (&eid, w) in piece_eids.iter().zip(sol.edge_weights) {
            weights[eid as usize] = w;
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Closed form for cycles (analysis + test oracle).
// ---------------------------------------------------------------------------

/// Exact forest-polytope maximum of a cycle `C_k` with integer per-vertex
/// capacities `caps[i]` (cyclic vertex order): `min(k − 1, B)`, where `B` is
/// the degree-capped fractional b-matching optimum, computed half-integrally
/// by a three-state DP over doubled edge weights `u_e ∈ {0, 1, 2}` with
/// `u_{i−1} + u_i ≤ 2·caps[i]`.
///
/// Every sub-path constraint `x(E[S]) ≤ |S| − 1` is implied by `x ≤ 1`, so
/// only the whole-cycle rank bound `k − 1` can bind on top of the degree
/// caps; if `B > k − 1`, scaling the b-matching optimum down to `k − 1` stays
/// feasible (the polytope is down-closed). This is the analytical form behind
/// the production cycle short-circuit (all caps ≥ 2 ⇒ value `k − 1`) and the
/// oracle the equivalence proptests check both solvers against.
pub fn cycle_polytope_value(caps: &[usize]) -> f64 {
    let k = caps.len();
    assert!(k >= 3, "a cycle needs at least 3 vertices");
    // Edge e_i joins v_i and v_{i+1 mod k}; the cap at v_i constrains
    // u_{i-1} + u_i (indices mod k).
    let mut best_doubled = 0u64;
    for u0 in 0u64..=2 {
        // dp[state of u_i] = best doubled sum of u_1..u_i.
        let mut dp = [i64::MIN; 3];
        // Transition into u_1 constrained by v_1: u_0 + u_1 <= 2 caps[1].
        for (u1, slot) in dp.iter_mut().enumerate() {
            if u0 + u1 as u64 <= (2 * caps[1 % k]) as u64 {
                *slot = u1 as i64;
            }
        }
        for &cap in caps.iter().take(k).skip(2) {
            let mut next = [i64::MIN; 3];
            for (prev, &acc) in dp.iter().enumerate() {
                if acc == i64::MIN {
                    continue;
                }
                for (cur, slot) in next.iter_mut().enumerate() {
                    if prev + cur <= 2 * cap {
                        *slot = (*slot).max(acc + cur as i64);
                    }
                }
            }
            dp = next;
        }
        // Close the cycle: the cap at v_0 constrains u_{k-1} + u_0.
        for (last, &acc) in dp.iter().enumerate() {
            if acc == i64::MIN {
                continue;
            }
            if last as u64 + u0 <= (2 * caps[0]) as u64 {
                best_doubled = best_doubled.max(acc as u64 + u0);
            }
        }
    }
    let b = best_doubled as f64 / 2.0;
    ((k - 1) as f64).min(b)
}

// ---------------------------------------------------------------------------
// Labeled-slice dedup.
// ---------------------------------------------------------------------------

struct DedupEntry {
    key: Vec<u32>,
    sol: Arc<CompSolution>,
}

struct DedupTable {
    map: Mutex<HashMap<u64, Vec<DedupEntry>>>,
    classes: AtomicUsize,
}

impl DedupTable {
    fn new() -> Self {
        DedupTable {
            map: Mutex::new(HashMap::new()),
            classes: AtomicUsize::new(0),
        }
    }

    /// A hash hit counts only after the stored key matches the probe exactly
    /// (witness check): colliding non-identical slices solve solo.
    fn lookup(&self, hash: u64, key: &[u32]) -> Option<Arc<CompSolution>> {
        let map = self.map.lock().expect("dedup lock");
        map.get(&hash)?
            .iter()
            .find(|entry| entry.key == key)
            .map(|entry| Arc::clone(&entry.sol))
    }

    fn insert(&self, hash: u64, key: Vec<u32>, sol: Arc<CompSolution>) {
        let mut map = self.map.lock().expect("dedup lock");
        let bucket = map.entry(hash).or_default();
        // A racing worker may have inserted the same class meanwhile; keep
        // the first (solutions are identical — pure function of the slice).
        if bucket.iter().any(|entry| entry.key == key) {
            return;
        }
        bucket.push(DedupEntry { key, sol });
        self.classes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Canonical encoding of a component's labeled CSR slice: vertex count,
/// degree sequence, then the concatenated local neighbor rows. Two
/// components encode equally iff they are identical as labeled graphs.
fn encode_labeled_slice(view: &CsrComponent<'_>, out: &mut Vec<u32>) {
    let n = view.num_vertices();
    out.push(n as u32);
    for v in 0..n {
        out.push(view.degree(v) as u32);
    }
    for v in 0..n {
        for w in view.neighbors(v) {
            out.push(w as u32);
        }
    }
}

fn fnv1a_64(words: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::PolytopeSolver;
    use ccdp_graph::{generators, CsrGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn partition_value(g: &Graph, delta: f64, opts: &SolveOptions) -> PartitionSolution {
        let part = CsrGraph::from_graph(g).partition_components();
        solve_partition(&part, delta, 1, opts).unwrap()
    }

    fn general_value(g: &Graph, delta: f64) -> PolytopeSolution {
        CombinatorialSolver::new().solve(g, delta).unwrap()
    }

    #[test]
    fn micro_matches_general_bitwise_on_structured_families() {
        let mut graphs = vec![
            generators::path(2),
            generators::path(9),
            generators::star(6),
            generators::cycle(3),
            generators::cycle(8),
            generators::complete(5),
            generators::planted_star_forest(5, 3, 4),
            generators::caveman(3, 4),
        ];
        // Unicyclic with pendants: a cycle with trees hanging off.
        let mut uni = generators::cycle(6);
        for _ in 0..4 {
            uni.add_vertex();
        }
        uni.add_edge(0, 6);
        uni.add_edge(6, 7);
        uni.add_edge(2, 8);
        uni.add_edge(8, 9);
        graphs.push(uni);

        for g in &graphs {
            for delta in [1.0, 2.0, 3.0, 4.0] {
                let reference = general_value(g, delta);
                for opts in [
                    SolveOptions::default(),
                    SolveOptions {
                        micro: true,
                        dedup: false,
                        want_weights: true,
                    },
                    SolveOptions {
                        micro: false,
                        dedup: true,
                        want_weights: true,
                    },
                    SolveOptions {
                        micro: false,
                        dedup: false,
                        want_weights: true,
                    },
                ] {
                    let got = partition_value(g, delta, &opts);
                    assert_eq!(
                        reference.value.to_bits(),
                        got.solution.value.to_bits(),
                        "value mismatch (delta={delta}, opts={opts:?})"
                    );
                    // The partition may permute edges across components, but
                    // every component is solved with identical local labels,
                    // so the weight vectors agree as multisets of bits.
                    let mut want: Vec<u64> =
                        reference.edge_weights.iter().map(|w| w.to_bits()).collect();
                    let mut have: Vec<u64> = got
                        .solution
                        .edge_weights
                        .iter()
                        .map(|w| w.to_bits())
                        .collect();
                    want.sort_unstable();
                    have.sort_unstable();
                    assert_eq!(want, have, "weight multiset (delta={delta}, opts={opts:?})");
                }
            }
        }
    }

    #[test]
    fn micro_matches_general_bitwise_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..12 {
            let g = generators::erdos_renyi(60, 1.4 / 60.0, &mut rng);
            for delta in [1.0, 2.0, 3.0] {
                let reference = general_value(&g, delta);
                let got = partition_value(&g, delta, &SolveOptions::default());
                assert_eq!(
                    reference.value.to_bits(),
                    got.solution.value.to_bits(),
                    "round {round}, delta {delta}"
                );
            }
        }
    }

    #[test]
    fn dedup_reuses_identical_components() {
        // 50 identical triangles: 1 class, 49 hits, and the value still
        // matches the general solver bitwise.
        let mut g = Graph::new(150);
        for c in 0..50 {
            let b = 3 * c;
            g.add_edge(b, b + 1);
            g.add_edge(b + 1, b + 2);
            g.add_edge(b, b + 2);
        }
        let got = partition_value(&g, 1.0, &SolveOptions::default());
        assert_eq!(got.stats.dedup_classes, 1);
        assert_eq!(got.stats.dedup_hits, 49);
        let reference = general_value(&g, 1.0);
        assert_eq!(reference.value.to_bits(), got.solution.value.to_bits());
    }

    #[test]
    fn dedup_witness_separates_distinct_labeled_slices() {
        // A triangle and a path on 3 vertices have the same size but
        // different labeled structure: they must land in different classes.
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        let got = partition_value(&g, 2.0, &SolveOptions::default());
        assert_eq!(got.stats.dedup_classes, 2);
        assert_eq!(got.stats.dedup_hits, 0);
    }

    #[test]
    fn partition_solve_is_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(3000, 1.05 / 3000.0, &mut rng);
        let part = CsrGraph::from_graph(&g).partition_components();
        let seq = solve_partition(&part, 1.0, 1, &SolveOptions::default()).unwrap();
        for threads in [2, 4, 8] {
            let par = solve_partition(&part, 1.0, threads, &SolveOptions::default()).unwrap();
            assert_eq!(
                seq.solution.value.to_bits(),
                par.solution.value.to_bits(),
                "threads={threads}"
            );
            assert_eq!(
                seq.solution
                    .edge_weights
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                par.solution
                    .edge_weights
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn value_only_mode_matches_weighted_mode() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::erdos_renyi(200, 1.2 / 200.0, &mut rng);
        let part = CsrGraph::from_graph(&g).partition_components();
        let with = solve_partition(&part, 2.0, 1, &SolveOptions::default()).unwrap();
        let without = solve_partition(
            &part,
            2.0,
            1,
            &SolveOptions {
                want_weights: false,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            with.solution.value.to_bits(),
            without.solution.value.to_bits()
        );
        assert!(without.solution.edge_weights.is_empty());
        assert_eq!(with.solution.edge_weights.len(), g.num_edges());
    }

    #[test]
    fn cycle_closed_form_matches_both_solvers() {
        for k in [3usize, 4, 5, 6, 9, 12] {
            let g = generators::cycle(k);
            for delta in 1..=4usize {
                let oracle = cycle_polytope_value(&vec![delta; k]);
                let general = general_value(&g, delta as f64).value;
                let micro = partition_value(&g, delta as f64, &SolveOptions::default())
                    .solution
                    .value;
                assert!(
                    (general - oracle).abs() < 1e-6,
                    "general C_{k} Δ={delta}: {general} vs oracle {oracle}"
                );
                assert!(
                    (micro - oracle).abs() < 1e-6,
                    "micro C_{k} Δ={delta}: {micro} vs oracle {oracle}"
                );
            }
        }
        // Δ = 1 on C_k: fractional matching optimum k/2 for even k,
        // (k-1)/2 + ... the DP pins the exact half-integral values.
        assert_eq!(cycle_polytope_value(&[1, 1, 1]), 1.5);
        assert_eq!(cycle_polytope_value(&[1, 1, 1, 1]), 2.0);
        assert_eq!(cycle_polytope_value(&[2, 2, 2, 2]), 3.0);
        assert_eq!(cycle_polytope_value(&[1, 1, 1, 1, 1]), 2.5);
    }

    #[test]
    fn invalid_delta_is_rejected() {
        let part = CsrGraph::from_graph(&generators::path(4)).partition_components();
        assert!(matches!(
            solve_partition(&part, 0.0, 1, &SolveOptions::default()),
            Err(PolytopeError::InvalidDelta { .. })
        ));
    }
}
