//! Constraint generation for the Δ-bounded forest polytope.
//!
//! The polytope has exponentially many forest constraints
//! `x(E[S]) ≤ |S| − 1`, so the LP is solved by cutting planes: start with the
//! degree constraints, the per-edge bounds and the whole-vertex-set
//! constraint, then repeatedly ask a separation oracle for violated forest
//! constraints and re-solve. The separation problem — maximize
//! `x(E[S]) − (|S| − 1)` over sets `S` containing a fixed root — is a
//! maximum-weight-closure (project-selection) problem and is solved exactly
//! with one min-cut per root (Padberg–Wolsey's observation that this family
//! of constraints admits a polynomial separation oracle).
//!
//! Three engine properties matter to its users:
//!
//! * **Warm starts.** One [`IncrementalSimplex`] lives for the whole
//!   cutting-plane loop; each generated cut is reduced against the current
//!   optimal basis and repaired with a few dual-simplex pivots instead of a
//!   dense from-scratch re-solve (with refactorization containing drift).
//! * **Per-vertex capacities.** The engine accepts heterogeneous degree caps
//!   `x(δ(v)) ≤ cap_v`, which is what lets the combinatorial backend peel
//!   off the easy parts of a graph exactly and hand only the irreducible
//!   core to the LP.
//! * **Valid upper bounds while running.** Every fresh relaxation solve is a
//!   proven upper bound on the true optimum, which the combined core engine
//!   in [`crate::column_generation`] pairs with the column-generation lower
//!   bound — cutting planes alone can stall on the massively symmetric
//!   rank-bound face of supercritical Erdős–Rényi cores, where the bound
//!   pairing terminates immediately.

use crate::simplex::IncrementalSimplex;
use crate::solver::{PolytopeError, PolytopeSolution};
use ccdp_flow::{max_weight_closure, ClosureInstance};
use ccdp_graph::Graph;

/// Tolerance for constraint violation in the separation oracle.
const VIOLATION_TOL: f64 = 1e-6;
/// Safety bound on cutting-plane rounds per component.
pub(crate) const MAX_ROUNDS: usize = 400;
/// Most-violated cuts admitted per round. With warm-started re-solves an
/// added row costs only a few dual pivots, so (unlike the old from-scratch
/// dense solver, where 5 was the measured sweet spot) a larger budget pays
/// for itself by saving whole separation rounds.
pub(crate) const MAX_CUTS_PER_ROUND: usize = 64;

/// Stepwise cutting-plane solver for one connected component with per-vertex
/// degree capacities (`caps[v]` is the right-hand side of `x(δ(v)) ≤ cap_v`).
/// Every capacity must be positive — exhausted vertices are expected to have
/// been eliminated by the caller.
///
/// Each [`CuttingPlaneState::step`] performs one LP (re-)solve plus one
/// separation round. The relaxation value after any *fresh* solve is a valid
/// **upper bound** on the true optimum, exposed via
/// [`CuttingPlaneState::upper_bound`] — which is what lets the combined
/// core-piece driver pair this engine with the column-generation lower bound
/// and stop when the two meet.
pub(crate) struct CuttingPlaneState {
    edges: Vec<(usize, usize)>,
    simplex: IncrementalSimplex,
    seen_cuts: std::collections::HashSet<Vec<usize>>,
    refactorized_in_a_row: usize,
    max_cuts_per_round: usize,
    /// Best proven upper bound (from fresh relaxation solves only).
    upper_bound: f64,
    generated_cuts: usize,
    lp_iterations: usize,
    lp_solves: usize,
    finished: Option<PolytopeSolution>,
}

impl CuttingPlaneState {
    pub(crate) fn new(
        g: &Graph,
        caps: &[f64],
        max_cuts_per_round: usize,
    ) -> Result<Self, PolytopeError> {
        let n = g.num_vertices();
        debug_assert_eq!(caps.len(), n);
        let edges = g.edge_vec();
        let m = edges.len();

        // Per-edge bounds (the |S| = 2 forest constraints, tightened by the
        // caps) are handled as *implicit variable bounds*, not rows: this
        // keeps the tableau one row per vertex instead of one per vertex +
        // edge, and — decisively — removes the massive ratio-test degeneracy
        // that a zero-slack row per weight-1 edge causes at near-integral
        // vertices.
        let edge_bounds: Vec<f64> = edges
            .iter()
            .map(|&(a, b)| 1.0f64.min(caps[a]).min(caps[b]))
            .collect();
        let mut simplex = IncrementalSimplex::with_upper_bounds(&vec![1.0; m], edge_bounds);
        // Degree constraints x(δ(v)) ≤ cap_v.
        for (v, &cap) in caps.iter().enumerate() {
            let terms: Vec<(usize, f64)> = edges
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| a == v || b == v)
                .map(|(i, _)| (i, 1.0))
                .collect();
            if !terms.is_empty() {
                simplex.add_constraint(&terms, cap)?;
            }
        }
        // Whole-component constraint x(E) ≤ n − 1.
        simplex.add_constraint(
            &(0..m).map(|i| (i, 1.0)).collect::<Vec<_>>(),
            (n - 1) as f64,
        )?;
        Ok(CuttingPlaneState {
            edges,
            simplex,
            seen_cuts: std::collections::HashSet::new(),
            refactorized_in_a_row: 0,
            max_cuts_per_round,
            upper_bound: f64::INFINITY,
            generated_cuts: 0,
            lp_iterations: 0,
            lp_solves: 0,
            finished: None,
        })
    }

    /// Simplex pivots spent so far (the driver's cost-balancing signal).
    pub(crate) fn lp_iterations(&self) -> usize {
        self.lp_iterations
    }

    /// LP solves performed so far.
    pub(crate) fn lp_solves(&self) -> usize {
        self.lp_solves
    }

    /// Cuts generated so far.
    pub(crate) fn generated_cuts(&self) -> usize {
        self.generated_cuts
    }

    /// Best proven upper bound on the component optimum.
    pub(crate) fn upper_bound(&self) -> f64 {
        self.upper_bound
    }

    /// The exact solution, once a step has converged.
    pub(crate) fn take_finished(&mut self) -> Option<PolytopeSolution> {
        self.finished.take()
    }

    /// One LP (re-)solve plus one separation round.
    pub(crate) fn step(&mut self, g: &Graph) -> Result<(), PolytopeError> {
        let sol = self.simplex.solve()?;
        self.lp_iterations += sol.iterations;
        self.lp_solves += 1;
        if self.simplex.last_solve_was_fresh() {
            // Fresh relaxation optima are trustworthy upper bounds; warm
            // re-solves may have drifted below the true relaxation optimum
            // and must not tighten the bound.
            self.upper_bound = self.upper_bound.min(sol.objective_value);
        }

        let mut violated = violated_forest_constraints(g, &self.edges, &sol.values);
        // Near-integral optima of the relaxation are unions of paths and
        // *cycles* (degree-feasible, rank-valued, forest-infeasible); cutting
        // their support cycles directly is far more surgical than the
        // closure sets, so feed those cuts in first.
        let cycles = support_cycle_cuts(g, &self.edges, &sol.values);
        if !cycles.is_empty() {
            violated.splice(0..0, cycles);
        }
        if violated.is_empty() {
            // Only accept convergence off a freshly factorized tableau: a
            // warm-started tableau can drift into declaring a feasible but
            // *suboptimal* point optimal, which the separation oracle cannot
            // detect. The extra from-scratch solve is one round's cost.
            if !self.simplex.last_solve_was_fresh() {
                self.simplex.refactorize();
                return Ok(());
            }
            self.upper_bound = self.upper_bound.min(sol.objective_value);
            self.finished = Some(PolytopeSolution {
                value: sol.objective_value,
                edge_weights: sol.values,
                generated_cuts: self.generated_cuts,
                lp_iterations: self.lp_iterations,
                lp_solves: self.lp_solves,
                lp_fallback_components: 1,
            });
            return Ok(());
        }
        let mut added = 0usize;
        for set in violated {
            if added == self.max_cuts_per_round {
                break;
            }
            if self.seen_cuts.insert(set.clone()) {
                let terms: Vec<(usize, f64)> = self
                    .edges
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, b))| {
                        set.binary_search(&a).is_ok() && set.binary_search(&b).is_ok()
                    })
                    .map(|(i, _)| (i, 1.0))
                    .collect();
                self.simplex
                    .add_constraint(&terms, (set.len() - 1) as f64)?;
                self.generated_cuts += 1;
                added += 1;
            }
        }
        if added == 0 {
            // Every violated constraint is already a row of the LP: the
            // returned point is numerically inconsistent with its own
            // constraint system. Refactorize and re-solve on clean numbers;
            // if that does not clear the inconsistency, give up loudly
            // rather than returning a wrong optimum.
            self.refactorized_in_a_row += 1;
            if self.refactorized_in_a_row > 1 {
                return Err(PolytopeError::Lp(crate::problem::LpError::Stalled {
                    pivots: self.lp_iterations,
                }));
            }
            self.simplex.refactorize();
        } else {
            self.refactorized_in_a_row = 0;
        }
        Ok(())
    }
}

/// Runs the cutting-plane loop to completion (the reference
/// [`SimplexSolver`](crate::SimplexSolver) path).
pub(crate) fn solve_component_with_caps(
    g: &Graph,
    caps: &[f64],
    max_rounds: usize,
    max_cuts_per_round: usize,
) -> Result<PolytopeSolution, PolytopeError> {
    let mut state = CuttingPlaneState::new(g, caps, max_cuts_per_round)?;
    for _ in 0..max_rounds {
        state.step(g)?;
        if let Some(sol) = state.take_finished() {
            return Ok(sol);
        }
    }
    Err(PolytopeError::SeparationDidNotConverge { rounds: max_rounds })
}

/// Separation oracle for the forest constraints: returns vertex sets `S`
/// (each sorted ascending) whose constraint `x(E[S]) ≤ |S| − 1` is violated
/// by `x`, most violated first, or an empty vector if `x` satisfies them all.
///
/// For each root `r` it solves a maximum-weight-closure instance whose
/// optimum is `max_{S ∋ r} [x(E[S]) − |S| + 1]`; a positive optimum certifies
/// a violation and the optimal closure yields the violating set. `edges` must
/// be `g.edge_vec()` and `x` the edge weights in the same order.
pub fn violated_forest_constraints(
    g: &Graph,
    edges: &[(usize, usize)],
    x: &[f64],
) -> Vec<Vec<usize>> {
    let n = g.num_vertices();
    let mut best_per_root: Vec<(f64, Vec<usize>)> = Vec::new();

    for root in 0..n {
        if g.degree(root) == 0 {
            continue;
        }
        let mut inst = ClosureInstance::new();
        // One item per non-root vertex, cost 1.
        let mut vertex_item = vec![usize::MAX; n];
        for (v, item) in vertex_item.iter_mut().enumerate() {
            if v != root {
                *item = inst.add_item(-1.0);
            }
        }
        // One item per edge with positive weight; edges incident to the root
        // only require their non-root endpoint.
        let mut useful = false;
        for (i, &(a, b)) in edges.iter().enumerate() {
            if x[i] <= VIOLATION_TOL {
                continue;
            }
            let e = inst.add_item(x[i]);
            if a != root {
                inst.add_requirement(e, vertex_item[a]);
            }
            if b != root {
                inst.add_requirement(e, vertex_item[b]);
            }
            useful = true;
        }
        if !useful {
            continue;
        }
        let closure = max_weight_closure(&inst);
        // closure.weight = max_{S ∋ root} x(E[S]) − (|S| − 1).
        if closure.weight > VIOLATION_TOL {
            let mut set: Vec<usize> = vec![root];
            for (v, &item) in vertex_item.iter().enumerate() {
                if v != root && closure.selected[item] {
                    set.push(v);
                }
            }
            set.sort_unstable();
            if set.len() >= 2 {
                best_per_root.push((closure.weight, set));
            }
        }
    }

    // Minimalize each set before ranking: removing a vertex that carries
    // less than one unit of weight inside `S` *increases* the violation
    // (`x(E[S]) − |S| + 1` gains `1 − w_v(S) > 0`), so minimal sets are both
    // smaller and strictly stronger cuts.
    for (violation, set) in &mut best_per_root {
        minimalize_violated_set(edges, x, set, violation);
    }

    // Most violated first, deduplicated (many roots find the same set).
    best_per_root.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut results: Vec<Vec<usize>> = Vec::new();
    for (_, set) in best_per_root {
        if set.len() >= 2 && !results.contains(&set) {
            results.push(set);
        }
    }
    results
}

/// Shrinks a violated set `S` to a minimal violated subset by repeatedly
/// removing vertices whose weight into the set is below 1 (each removal
/// strictly increases the violation). `violation` is updated in place.
fn minimalize_violated_set(
    edges: &[(usize, usize)],
    x: &[f64],
    set: &mut Vec<usize>,
    violation: &mut f64,
) {
    loop {
        // Weight carried by each member vertex inside the set.
        let mut inside_weight: std::collections::HashMap<usize, f64> =
            set.iter().map(|&v| (v, 0.0)).collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            if x[i] > 0.0 && set.binary_search(&a).is_ok() && set.binary_search(&b).is_ok() {
                *inside_weight.get_mut(&a).expect("member") += x[i];
                *inside_weight.get_mut(&b).expect("member") += x[i];
            }
        }
        // Remove the lightest vertex if it strengthens the cut.
        let lightest = set
            .iter()
            .map(|&v| (v, inside_weight[&v]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match lightest {
            Some((v, w)) if w < 1.0 - 1e-12 && set.len() > 2 => {
                *violation += 1.0 - w;
                set.retain(|&u| u != v);
            }
            _ => return,
        }
    }
}

/// Finds cycles in the near-integral support of `x` (edges with weight
/// ≥ 1 − tol) and returns their vertex sets: every such cycle `C` violates
/// its forest constraint by ≈ 1, and these cuts dispatch the cycle-heavy
/// integral optima of the relaxation wholesale.
fn support_cycle_cuts(g: &Graph, edges: &[(usize, usize)], x: &[f64]) -> Vec<Vec<usize>> {
    let n = g.num_vertices();
    let support: Vec<usize> = (0..edges.len())
        .filter(|&i| x[i] >= 1.0 - VIOLATION_TOL)
        .collect();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for &i in &support {
        let (a, b) = edges[i];
        adj[a].push((b, i));
        adj[b].push((a, i));
    }
    // Iterative DFS; each non-tree edge closes one fundamental cycle.
    let mut parent = vec![usize::MAX; n];
    let mut parent_edge = vec![usize::MAX; n];
    let mut state = vec![0u8; n]; // 0 = unseen, 1 = on stack/done
    let mut cuts: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if state[start] != 0 || adj[start].is_empty() {
            continue;
        }
        let mut stack = vec![start];
        state[start] = 1;
        while let Some(u) = stack.pop() {
            for &(v, e) in &adj[u] {
                if e == parent_edge[u] {
                    continue;
                }
                if state[v] == 0 {
                    state[v] = 1;
                    parent[v] = u;
                    parent_edge[v] = e;
                    stack.push(v);
                } else {
                    // Non-tree edge (u, v): walk parents of u up to v.
                    let mut cycle = vec![v, u];
                    let mut w = u;
                    let mut hops = 0;
                    while parent[w] != usize::MAX && w != v && hops <= n {
                        w = parent[w];
                        if w != v {
                            cycle.push(w);
                        }
                        hops += 1;
                    }
                    if w == v {
                        cycle.sort_unstable();
                        cycle.dedup();
                        if cycle.len() >= 2 && !cuts.contains(&cycle) {
                            cuts.push(cycle);
                        }
                    }
                }
            }
        }
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_graph::generators;

    #[test]
    fn separation_oracle_finds_a_violated_clique_constraint() {
        // Hand-craft an infeasible point: every edge of K_4 at weight 1
        // violates x(E[V]) ≤ 3. The oracle must report a violating set.
        let g = generators::complete(4);
        let edges = g.edge_vec();
        let x = vec![1.0; edges.len()];
        let violated = violated_forest_constraints(&g, &edges, &x);
        assert!(!violated.is_empty());
        let set = &violated[0];
        let inside: f64 = edges
            .iter()
            .zip(&x)
            .filter(|(&(a, b), _)| set.contains(&a) && set.contains(&b))
            .map(|(_, &w)| w)
            .sum();
        assert!(inside > (set.len() - 1) as f64 + 1e-6);
    }

    #[test]
    fn separation_oracle_accepts_a_feasible_point() {
        let g = generators::complete(4);
        let edges = g.edge_vec();
        // A spanning star (indicator vector) is in the forest polytope.
        let x: Vec<f64> = edges
            .iter()
            .map(|&(a, _)| if a == 0 { 1.0 } else { 0.0 })
            .collect();
        assert!(violated_forest_constraints(&g, &edges, &x).is_empty());
    }

    #[test]
    fn heterogeneous_caps_bind_per_vertex() {
        // A path a–b–c with cap 0.5 at b and 1.0 elsewhere: both edges are
        // limited by b's capacity in total, so the optimum is 1.0? No — each
        // edge individually may use b up to its cap: x_ab + x_bc ≤ 0.5 at b,
        // and each edge is also bounded by min(1, caps). Optimum 0.5.
        let g = generators::path(3);
        let sol = solve_component_with_caps(&g, &[1.0, 0.5, 1.0], MAX_ROUNDS, MAX_CUTS_PER_ROUND)
            .unwrap();
        assert!((sol.value - 0.5).abs() < 1e-6, "value {}", sol.value);
    }

    #[test]
    fn uniform_caps_match_expected_triangle_value() {
        let g = generators::cycle(3);
        let sol = solve_component_with_caps(&g, &[1.0; 3], MAX_ROUNDS, MAX_CUTS_PER_ROUND).unwrap();
        assert!((sol.value - 1.5).abs() < 1e-6, "value {}", sol.value);
    }
}
