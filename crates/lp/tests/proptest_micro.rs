//! Property tests for the micro-component fast paths: on every generator
//! family, every Δ in the small grid, every toggle combination and thread
//! budget, `solve_partition` must return the exact bits of the general
//! combinatorial path — micro closed forms and isomorphism-class dedup are
//! pure work-savers, never value-changers.

use ccdp_graph::{generators, CsrGraph, Graph};
use ccdp_lp::{solve_partition, SolveOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random tree: vertex `i ≥ 1` attaches to a uniform earlier vertex.
fn random_tree(n: usize, rng: &mut StdRng) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_edge(j, i);
    }
    g
}

/// One graph from the named family, deterministic in `seed`.
fn family_graph(family: u8, n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        0 => random_tree(n.max(1), &mut rng),
        1 => generators::cycle(n.max(3)),
        2 => generators::erdos_renyi(n.max(2), 1.4 / n.max(2) as f64, &mut rng),
        3 => generators::barabasi_albert(n.max(4), 2, &mut rng),
        _ => generators::random_geometric(n.max(2), 0.18, &mut rng),
    }
}

fn options(micro: bool, dedup: bool) -> SolveOptions {
    SolveOptions {
        micro,
        dedup,
        want_weights: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Micro + dedup vs the general path: identical value bits and identical
    /// per-edge weight bits (arena order), for every family, Δ and thread
    /// budget.
    #[test]
    fn micro_and_dedup_match_general_bitwise(
        family in 0u8..5,
        n in 4usize..60,
        seed in 0u64..1u64 << 48,
        delta in 1u8..=4,
    ) {
        let g = family_graph(family, n, seed);
        let arena = CsrGraph::from_graph(&g);
        let part = arena.partition_components();
        let delta = delta as f64;

        let base = solve_partition(&part, delta, 1, &options(false, false)).unwrap();
        for (micro, dedup) in [(true, true), (true, false), (false, true)] {
            for threads in [1usize, 3] {
                let fast = solve_partition(&part, delta, threads, &options(micro, dedup)).unwrap();
                prop_assert_eq!(
                    base.solution.value.to_bits(),
                    fast.solution.value.to_bits(),
                    "value bits diverged: family={} micro={} dedup={} threads={}",
                    family, micro, dedup, threads
                );
                prop_assert_eq!(
                    base.solution.edge_weights.len(),
                    fast.solution.edge_weights.len()
                );
                for (i, (a, b)) in base
                    .solution
                    .edge_weights
                    .iter()
                    .zip(&fast.solution.edge_weights)
                    .enumerate()
                {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "weight bits diverged at edge {}: micro={} dedup={}",
                        i, micro, dedup
                    );
                }
            }
        }
    }

    /// Dedup never pairs non-isomorphic components: a graph made of two
    /// independently random components must release the same bits with and
    /// without dedup — a false cache pairing would hand one component the
    /// other's weights and break this immediately. The class/hit counters
    /// must also stay consistent with the component count.
    #[test]
    fn dedup_separates_random_component_pairs(
        fam_a in 0u8..5,
        fam_b in 0u8..5,
        na in 4usize..20,
        nb in 4usize..20,
        seed in 0u64..1u64 << 48,
        delta in 1u8..=4,
    ) {
        let a = family_graph(fam_a, na, seed);
        let b = family_graph(fam_b, nb, seed ^ 0x9E37_79B9);
        // Disjoint union: b's vertices shifted past a's.
        let mut g = Graph::new(a.num_vertices() + b.num_vertices());
        for (u, v) in a.edges() {
            g.add_edge(u, v);
        }
        for (u, v) in b.edges() {
            g.add_edge(a.num_vertices() + u, a.num_vertices() + v);
        }
        let part = CsrGraph::from_graph(&g).partition_components();
        let delta = delta as f64;

        let plain = solve_partition(&part, delta, 1, &options(true, false)).unwrap();
        let deduped = solve_partition(&part, delta, 1, &options(true, true)).unwrap();
        prop_assert_eq!(
            plain.solution.value.to_bits(),
            deduped.solution.value.to_bits()
        );
        for (x, y) in plain
            .solution
            .edge_weights
            .iter()
            .zip(&deduped.solution.edge_weights)
        {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        // Every dedup-eligible solve is either a new class or a hit; these
        // components are all small enough to be eligible.
        let stats = deduped.stats;
        prop_assert!(stats.dedup_classes + stats.dedup_hits <= stats.components);
        prop_assert!(stats.components == 0 || stats.dedup_classes >= 1);
    }
}
