//! Property-based tests for the simplex solver.

use ccdp_lp::{LinearProgram, LpError};
use proptest::prelude::*;

/// A random LP with non-negative constraint matrix and positive rhs (always
/// feasible at the origin, bounded whenever every variable appears in some row
/// with a positive coefficient).
fn arb_lp() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>)> {
    (1usize..5, 1usize..7).prop_flat_map(|(nvars, ncons)| {
        (
            proptest::collection::vec(-2.0f64..3.0, nvars),
            proptest::collection::vec(proptest::collection::vec(0.0f64..2.0, nvars), ncons),
            proptest::collection::vec(0.5f64..5.0, ncons),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solutions_are_feasible_and_nonnegative((c, a, b) in arb_lp()) {
        let mut lp = LinearProgram::new(c.len(), c.clone());
        for (row, &rhs) in a.iter().zip(&b) {
            lp.add_constraint_dense(row.clone(), rhs);
        }
        match lp.solve() {
            Ok(sol) => {
                for (row, &rhs) in a.iter().zip(&b) {
                    prop_assert!(LinearProgram::dot(row, &sol.values) <= rhs + 1e-6);
                }
                for &x in &sol.values {
                    prop_assert!(x >= -1e-9);
                }
                // Objective value is consistent with the reported point.
                let recomputed = LinearProgram::dot(&c, &sol.values);
                prop_assert!((recomputed - sol.objective_value).abs() < 1e-6);
                // The optimum is at least the value at the origin (0).
                prop_assert!(sol.objective_value >= -1e-9 || c.iter().all(|&ci| ci <= 0.0));
            }
            Err(LpError::Unbounded) => {
                // Acceptable: some variable with positive objective never appears
                // with a positive coefficient in any constraint.
                let unbounded_possible = c.iter().enumerate().any(|(j, &cj)| {
                    cj > 0.0 && a.iter().all(|row| row[j] <= 1e-8)
                });
                prop_assert!(unbounded_possible, "unexpected unboundedness");
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected LP error: {e}"))),
        }
    }

    #[test]
    fn adding_a_constraint_never_improves_the_optimum((c, a, b) in arb_lp(), extra_rhs in 0.5f64..5.0) {
        // Build the base LP and make sure it is bounded by boxing every variable.
        let n = c.len();
        let mut lp = LinearProgram::new(n, c.clone());
        for j in 0..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            lp.add_constraint_dense(row, 10.0);
        }
        for (row, &rhs) in a.iter().zip(&b) {
            lp.add_constraint_dense(row.clone(), rhs);
        }
        let before = lp.solve().unwrap().objective_value;
        lp.add_constraint_dense(vec![1.0; n], extra_rhs);
        let after = lp.solve().unwrap().objective_value;
        prop_assert!(after <= before + 1e-6);
    }

    #[test]
    fn two_variable_lps_match_vertex_enumeration(
        c in proptest::collection::vec(-2.0f64..3.0, 2),
        rows in proptest::collection::vec((0.0f64..2.0, 0.0f64..2.0, 0.5f64..4.0), 1..5),
    ) {
        let mut lp = LinearProgram::new(2, c.clone());
        // Box constraints keep the LP bounded and make vertex enumeration easy.
        lp.add_constraint_dense(vec![1.0, 0.0], 6.0);
        lp.add_constraint_dense(vec![0.0, 1.0], 6.0);
        let mut all_rows = vec![(1.0, 0.0, 6.0), (0.0, 1.0, 6.0)];
        for &(a0, a1, rhs) in &rows {
            lp.add_constraint_dense(vec![a0, a1], rhs);
            all_rows.push((a0, a1, rhs));
        }
        let sol = lp.solve().unwrap();

        // Enumerate candidate vertices: intersections of constraint/axis pairs.
        let mut best = 0.0f64; // the origin
        let mut lines = all_rows.clone();
        lines.push((1.0, 0.0, 0.0));
        lines.push((0.0, 1.0, 0.0));
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a, b2, e) = lines[i];
                let (c2, d, f) = lines[j];
                let det = a * d - b2 * c2;
                if det.abs() < 1e-9 {
                    continue;
                }
                let x = (e * d - b2 * f) / det;
                let y = (a * f - e * c2) / det;
                if x < -1e-9 || y < -1e-9 {
                    continue;
                }
                if all_rows.iter().all(|&(p, q, r)| p * x + q * y <= r + 1e-7) {
                    best = best.max(c[0] * x + c[1] * y);
                }
            }
        }
        prop_assert!((sol.objective_value - best).abs() < 1e-4,
            "simplex {} vs enumeration {}", sol.objective_value, best);
    }
}
