//! Cross-backend equivalence: the combinatorial solver and the pure
//! cutting-plane simplex backend are both exact, so on any graph and any
//! `Δ > 0` they must agree on `max x(E)` over the Δ-bounded forest polytope
//! (within LP tolerance), and both must return feasible optimal points.

use ccdp_graph::Graph;
use ccdp_lp::{violated_forest_constraints, CombinatorialSolver, PolytopeSolver, SimplexSolver};
use proptest::prelude::*;

/// A random graph encoded as (n, edge picks) so proptest can shrink it.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..12,
        proptest::collection::vec(0.0f64..1.0, 0..70),
        0.05f64..0.6,
    )
        .prop_map(|(n, picks, p)| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if let Some(&pick) = picks.get(k) {
                        if pick < p {
                            g.add_edge(u, v);
                        }
                    }
                    k += 1;
                }
            }
            g
        })
}

/// Asserts that `weights` is a feasible point of `P_Δ(g)` attaining `value`.
fn assert_feasible_and_attains(g: &Graph, delta: f64, weights: &[f64], value: f64) {
    let edges = g.edge_vec();
    assert_eq!(weights.len(), edges.len());
    for &w in weights {
        assert!((-1e-6..=1.0 + 1e-6).contains(&w), "weight {w} out of box");
    }
    for v in g.vertices() {
        let load: f64 = edges
            .iter()
            .zip(weights)
            .filter(|(&(a, b), _)| a == v || b == v)
            .map(|(_, &w)| w)
            .sum();
        assert!(load <= delta + 1e-5, "degree cap violated at {v}: {load}");
    }
    assert!(
        violated_forest_constraints(g, &edges, weights).is_empty(),
        "returned point violates a forest constraint"
    );
    let total: f64 = weights.iter().sum();
    assert!(
        (total - value).abs() < 1e-5,
        "value {value} vs point {total}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn backends_agree_on_integer_delta(g in arb_graph(), delta in 1usize..6) {
        let delta = delta as f64;
        let comb = CombinatorialSolver::new().solve(&g, delta).unwrap();
        let simp = SimplexSolver::new().solve(&g, delta).unwrap();
        prop_assert!(
            (comb.value - simp.value).abs() < 1e-5,
            "combinatorial {} vs simplex {} on {:?} edges, delta {delta}",
            comb.value, simp.value, g.num_edges()
        );
        assert_feasible_and_attains(&g, delta, &comb.edge_weights, comb.value);
        assert_feasible_and_attains(&g, delta, &simp.edge_weights, simp.value);
    }

    #[test]
    fn backends_agree_on_fractional_delta(g in arb_graph(), delta in 0.3f64..5.5) {
        let comb = CombinatorialSolver::new().solve(&g, delta).unwrap();
        let simp = SimplexSolver::new().solve(&g, delta).unwrap();
        prop_assert!(
            (comb.value - simp.value).abs() < 1e-5,
            "combinatorial {} vs simplex {} at fractional delta {delta}",
            comb.value, simp.value
        );
        assert_feasible_and_attains(&g, delta, &comb.edge_weights, comb.value);
    }

    #[test]
    fn combinatorial_value_is_monotone_in_delta(g in arb_graph()) {
        let solver = CombinatorialSolver::new();
        let mut prev = 0.0;
        for delta in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
            let v = solver.solve(&g, delta).unwrap().value;
            prop_assert!(v + 1e-6 >= prev, "f_Δ not monotone at {delta}");
            prev = v;
        }
    }

    #[test]
    fn bound_paired_simplex_matches_pure_cutting_planes(g in arb_graph(), delta in 1usize..5) {
        // The reference backend's new default (cuts + column-generation
        // bounds) and its historical pure-cutting-plane mode are both exact,
        // so they must agree wherever the pure mode converges at all.
        let delta = delta as f64;
        let paired = SimplexSolver::new().solve(&g, delta).unwrap();
        let pure = SimplexSolver::pure_cutting_planes().solve(&g, delta).unwrap();
        prop_assert!(
            (paired.value - pure.value).abs() < 1e-5,
            "paired {} vs pure {} at delta {delta}",
            paired.value, pure.value
        );
        assert_feasible_and_attains(&g, delta, &paired.edge_weights, paired.value);
    }
}

/// The workload class pure cutting planes stall on: a dense supercritical
/// core whose optimum sits on the massively symmetric rank-bound face. With
/// bound pairing the reference backend must terminate (quickly) at the rank
/// bound `n − 1` and agree with the combinatorial backend.
#[test]
fn bound_paired_simplex_handles_supercritical_cores() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = 120;
    let mut rng = StdRng::seed_from_u64(23);
    let mut g = Graph::new(n);
    // ER with expected average degree 8: far supercritical, one giant core.
    let p = 8.0 / n as f64;
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    for delta in [4.0, 8.0] {
        let simp = SimplexSolver::new().solve(&g, delta).unwrap();
        let comb = CombinatorialSolver::new().solve(&g, delta).unwrap();
        assert!(
            (simp.value - comb.value).abs() < 1e-5,
            "paired simplex {} vs combinatorial {} at delta {delta}",
            simp.value,
            comb.value
        );
        assert_feasible_and_attains(&g, delta, &simp.edge_weights, simp.value);
    }
}
