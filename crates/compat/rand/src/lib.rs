//! Vendored minimal stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The build environment has no access to a crates.io registry, so the subset
//! of the `rand` 0.8 API this workspace uses is provided locally:
//!
//! * [`RngCore`] (object-safe) and the [`Rng`] extension trait with
//!   [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator,
//! * [`seq::SliceRandom::choose`].
//!
//! The generator is fully deterministic given a seed (the project's tests and
//! experiments rely on seeded reproducibility), statistically solid for
//! simulation purposes, and — like the real `StdRng` — NOT a promise of any
//! particular stream across versions.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// The core of a random number generator: an object-safe source of random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the shim's
/// analogue of `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % width) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % width) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");
    }

    #[test]
    fn gen_range_int_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn dyn_rng_core_is_usable_through_the_rng_extension() {
        fn takes_impl_rng(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x = takes_impl_rng(dynrng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
