//! Named generators (the shim provides only [`StdRng`]).

use crate::{RngCore, SeedableRng};

/// A deterministic, seedable pseudorandom generator (xoshiro256++ seeded via
/// SplitMix64). Statistically strong for simulation; not cryptographic.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state with SplitMix64, the
        // procedure recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        StdRng { state }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
