//! Sequence-related helpers (the shim provides only [`SliceRandom::choose`]).

use crate::Rng;

/// Extension trait for random operations on slices.
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_the_slice_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
