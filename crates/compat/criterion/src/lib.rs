//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so the subset
//! of the criterion API the bench targets use is provided locally:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short calibration run sizes the
//! iteration count so one sample takes roughly a millisecond, then
//! `sample_size` samples are collected (bounded by `measurement_time`) and the
//! median per-iteration time is printed. No plots, no statistics files.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            _criterion: self,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Upper bound on the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibration: find an iteration count that makes one sample ~1ms.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 100_000) as u64;

        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            if started.elapsed() > self.measurement_time {
                break;
            }
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        println!(
            "{}/{}: median {} per iter ({} samples of {} iters)",
            self.name,
            id.id,
            format_ns(median),
            samples.len(),
            iters_per_sample,
        );
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }
}
