//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so the subset
//! of the proptest API this workspace uses is provided locally: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`Just`], [`any`],
//! [`collection::vec`], [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` times on deterministic, per-test seeded
//! random inputs. There is **no shrinking** — a failure reports the case index
//! so it can be replayed deterministically.

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Deterministic generator used to produce test inputs (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case, seeded from the test name and
    /// the case index so every run of the suite sees the same inputs.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold; fails the test.
    Fail(String),
    /// The generated input was rejected (e.g. by `prop_filter`); the case is
    /// skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failing result with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value (or rejects the attempt).
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `true` (bounded retries).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, TestCaseError> {
        Ok((self.f)(self.inner.generate(rng)?))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, TestCaseError> {
        (self.f)(self.inner.generate(rng)?).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        for _ in 0..64 {
            let v = self.inner.generate(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(TestCaseError::reject(self.whence.clone()))
    }
}

/// Strategy that always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(T::arbitrary(rng))
    }
}

/// The canonical strategy for any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % width) as i128;
                Ok((self.start as i128 + offset) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % width) as i128;
                Ok((start as i128 + offset) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                assert!(self.start < self.end, "cannot sample from an empty range");
                Ok(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                Ok(start + (rng.unit_f64() as $t) * (end - start))
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// The common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Runs a block of property tests.
///
/// Grammar (the subset of proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                for case in 0..cfg.cases {
                    let mut proptest_rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(
                            let $pat =
                                $crate::Strategy::generate(&($strat), &mut proptest_rng)?;
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case}/{}: {msg}",
                                stringify!($name),
                                cfg.cases,
                            );
                        }
                    }
                }
                assert!(
                    rejected < cfg.cases,
                    "proptest {}: every case was rejected",
                    stringify!($name),
                );
            }
        )*
    };
}

/// Asserts a property inside a `proptest!` body (early-returns a
/// [`TestCaseError::Fail`] instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Skips the current case (as a rejection, not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}
