//! Collection strategies (the shim provides only [`vec`]).

use crate::{Strategy, TestCaseError, TestRng};
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, TestCaseError> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `size` values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
