//! Hand-rolled HTTP/1.1 framing over blocking byte streams.
//!
//! No registry access means no hyper; this module is the minimal, strictly
//! bounded subset of HTTP/1.1 the serving front-end needs: request lines,
//! `Name: value` headers, `Content-Length` bodies, keep-alive by default.
//! Everything is capped ([`WireLimits`]) and every way the bytes can be
//! wrong is a typed [`NetError`] — the parser never panics, never allocates
//! proportionally to attacker input beyond the caps, and never leaves the
//! connection in an ambiguous state (a parse error always closes it).
//!
//! Not implemented on purpose: chunked transfer encoding (refused, typed),
//! pipelining beyond one in-flight request (requests are read one at a
//! time), and TLS (this tier terminates plaintext behind a proxy).

use crate::error::NetError;
use std::io::{BufRead, ErrorKind, Write};

/// Byte/count caps enforced while parsing a request head and body.
#[derive(Clone, Copy, Debug)]
pub struct WireLimits {
    /// Cap on the request line + header block, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the number of header lines.
    pub max_headers: usize,
    /// Cap on the declared body length, in bytes.
    pub max_body_bytes: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method token, upper-cased as received (`GET`, `POST`, …).
    pub method: String,
    /// The full request target (path plus optional `?query`).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The first header named `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked for the connection to close after this
    /// response (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or the typed refusal.
    pub fn body_str(&self) -> Result<&str, NetError> {
        std::str::from_utf8(&self.body).map_err(|_| NetError::BodyNotUtf8)
    }
}

/// What one attempt to read a request produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, in-limits request.
    Request(Request),
    /// The peer closed the connection cleanly before sending any byte — the
    /// normal end of a keep-alive connection, not an error.
    Closed,
    /// The read timed out before any byte arrived: the connection is idle.
    /// The caller decides whether to keep waiting (normal keep-alive) or
    /// close (draining).
    Idle,
}

/// Reads one request from `reader` under `limits`.
///
/// # Errors
/// Every malformed, oversized or truncated input is a typed [`NetError`]
/// (see [`NetError::http_status`] for how each is answered). A mid-request
/// timeout is [`NetError::TruncatedRequest`] / [`NetError::TruncatedBody`] —
/// only a timeout before the *first* byte reads as [`ReadOutcome::Idle`].
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &WireLimits,
) -> Result<ReadOutcome, NetError> {
    let mut head_budget = limits.max_head_bytes;
    // First line: distinguish clean close / idle from a real request.
    let line = match read_line(reader, &mut head_budget)? {
        LineOutcome::Line(l) => l,
        LineOutcome::CleanEof => return Ok(ReadOutcome::Closed),
        LineOutcome::IdleTimeout => return Ok(ReadOutcome::Idle),
    };
    let (method, target, version) = parse_request_line(&line)?;
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") {
        return Err(NetError::UnsupportedVersion { version });
    }

    let headers = read_headers(reader, &mut head_budget, limits)?;
    if headers.iter().any(|(n, v)| {
        n.eq_ignore_ascii_case("transfer-encoding") && !v.eq_ignore_ascii_case("identity")
    }) {
        return Err(NetError::BadHeader {
            detail: "chunked transfer encoding is not supported".into(),
        });
    }

    let content_length = content_length(&headers)?;
    let needs_body = method == "POST" || method == "PUT";
    let length = match (content_length, needs_body) {
        (Some(n), _) => n,
        (None, false) => 0,
        (None, true) => {
            return Err(NetError::BadContentLength {
                detail: "missing (a request body requires Content-Length)".into(),
            })
        }
    };
    if length > limits.max_body_bytes {
        return Err(NetError::BodyTooLarge {
            declared: length,
            limit: limits.max_body_bytes,
        });
    }
    let body = read_exact_body(reader, length)?;
    Ok(ReadOutcome::Request(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// One parsed response (the client side of the wire).
#[derive(Clone, Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header named `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server will close the connection after this response.
    pub fn closes_connection(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or the typed refusal.
    pub fn body_str(&self) -> Result<&str, NetError> {
        std::str::from_utf8(&self.body).map_err(|_| NetError::Protocol {
            detail: "response body is not UTF-8".into(),
        })
    }
}

/// Reads one response from `reader` under `limits` (client side).
pub fn read_response(reader: &mut impl BufRead, limits: &WireLimits) -> Result<Response, NetError> {
    let mut head_budget = limits.max_head_bytes;
    let line = match read_line(reader, &mut head_budget)? {
        LineOutcome::Line(l) => l,
        LineOutcome::CleanEof | LineOutcome::IdleTimeout => {
            return Err(NetError::Protocol {
                detail: "connection closed before a response arrived".into(),
            })
        }
    };
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .filter(|s| (100..600).contains(s))
        .ok_or_else(|| NetError::Protocol {
            detail: format!("bad status line `{line}`"),
        })?;
    if !version.starts_with("HTTP/1.") {
        return Err(NetError::Protocol {
            detail: format!("bad status line `{line}`"),
        });
    }
    let headers = read_headers(reader, &mut head_budget, limits).map_err(|e| match e {
        NetError::Io { detail } => NetError::Io { detail },
        other => NetError::Protocol {
            detail: other.to_string(),
        },
    })?;
    let length = content_length(&headers)
        .map_err(|e| NetError::Protocol {
            detail: e.to_string(),
        })?
        .unwrap_or(0);
    if length > limits.max_body_bytes {
        return Err(NetError::Protocol {
            detail: format!("response body of {length} bytes exceeds the client cap"),
        });
    }
    let body = read_exact_body(reader, length).map_err(|e| NetError::Protocol {
        detail: e.to_string(),
    })?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Writes one JSON response: status line, minimal headers, body.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, body, "application/json", &[], close)
}

/// Writes one response with an explicit content type and extra headers
/// (`X-Ccdp-Trace`, …). Header names and values must already be
/// wire-legal — this writer frames, it does not sanitize.
pub fn write_response_with(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    content_type: &str,
    extra_headers: &[(String, String)],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    // One buffered frame, one write: `write!` straight onto a TcpStream
    // issues a small segment per format fragment, and the Nagle/delayed-ACK
    // interaction turns that into ~40 ms stalls per response.
    let mut frame = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        frame.push_str(name);
        frame.push_str(": ");
        frame.push_str(value);
        frame.push_str("\r\n");
    }
    frame.push_str("\r\n");
    frame.push_str(body);
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}

/// Writes one JSON request (client side). `body = None` sends no
/// Content-Length (GET); `Some` always sends one, even when empty.
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> std::io::Result<()> {
    // Buffered for the same single-segment reason as `write_response`.
    let frame = match body {
        Some(body) => format!(
            "{method} {target} HTTP/1.1\r\nHost: ccdp\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        ),
        None => format!("{method} {target} HTTP/1.1\r\nHost: ccdp\r\n\r\n"),
    };
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}

/// The canonical reason phrase of the statuses this tier emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

enum LineOutcome {
    Line(String),
    CleanEof,
    IdleTimeout,
}

/// Reads one `\r\n`- (or lenient `\n`-) terminated line, charging every byte
/// against `budget`. Timeouts before the first byte are [`LineOutcome::IdleTimeout`];
/// after it, a timeout is a truncated request.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<LineOutcome, NetError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(LineOutcome::CleanEof)
                } else {
                    Err(NetError::TruncatedRequest)
                };
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(NetError::HeadersTooLarge {
                        limit: WireLimits::default().max_head_bytes,
                    });
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line).map_err(|_| NetError::BadHeader {
                        detail: "non-UTF-8 bytes in the request head".into(),
                    })?;
                    return Ok(LineOutcome::Line(text));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return if line.is_empty() {
                    Ok(LineOutcome::IdleTimeout)
                } else {
                    Err(NetError::TruncatedRequest)
                };
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn parse_request_line(line: &str) -> Result<(String, String, String), NetError> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(NetError::BadRequestLine {
                detail: format!("`{}`", truncate_for_display(line)),
            })
        }
    };
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(NetError::BadRequestLine {
            detail: format!("method `{}`", truncate_for_display(method)),
        });
    }
    if !target.starts_with('/') {
        return Err(NetError::BadRequestLine {
            detail: format!("target `{}`", truncate_for_display(target)),
        });
    }
    Ok((
        method.to_ascii_uppercase(),
        target.to_string(),
        version.to_string(),
    ))
}

fn read_headers(
    reader: &mut impl BufRead,
    budget: &mut usize,
    limits: &WireLimits,
) -> Result<Vec<(String, String)>, NetError> {
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, budget)? {
            LineOutcome::Line(l) => l,
            // EOF or a stall inside the header block truncates the request.
            LineOutcome::CleanEof | LineOutcome::IdleTimeout => {
                return Err(NetError::TruncatedRequest)
            }
        };
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= limits.max_headers {
            return Err(NetError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let (name, value) = line.split_once(':').ok_or_else(|| NetError::BadHeader {
            detail: format!("`{}` has no colon", truncate_for_display(&line)),
        })?;
        if name.is_empty() || name.contains(' ') {
            return Err(NetError::BadHeader {
                detail: format!("name `{}`", truncate_for_display(name)),
            });
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
}

fn content_length(headers: &[(String, String)]) -> Result<Option<usize>, NetError> {
    let mut found: Option<usize> = None;
    for (name, value) in headers {
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value.parse().map_err(|_| NetError::BadContentLength {
                detail: format!("`{}` is not a length", truncate_for_display(value)),
            })?;
            if let Some(prev) = found {
                if prev != n {
                    return Err(NetError::BadContentLength {
                        detail: format!("conflicting values {prev} and {n}"),
                    });
                }
            }
            found = Some(n);
        }
    }
    Ok(found)
}

fn read_exact_body(reader: &mut impl BufRead, length: usize) -> Result<Vec<u8>, NetError> {
    let mut body = vec![0u8; length];
    let mut got = 0;
    while got < length {
        match reader.read(&mut body[got..]) {
            Ok(0) => {
                return Err(NetError::TruncatedBody {
                    expected: length,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(NetError::TruncatedBody {
                    expected: length,
                    got,
                })
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(body)
}

/// Error details quote attacker-controlled bytes; keep them short so a junk
/// flood cannot balloon the refusal body.
fn truncate_for_display(s: &str) -> String {
    const MAX: usize = 48;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let cut = (0..=MAX)
            .rev()
            .find(|&i| s.is_char_boundary(i))
            .unwrap_or(0);
        format!("{}…", &s[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<ReadOutcome, NetError> {
        read_request(&mut BufReader::new(bytes), &WireLimits::default())
    }

    fn parse_ok(bytes: &[u8]) -> Request {
        match parse(bytes).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let r =
            parse_ok(b"POST /estimate?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path(), "/estimate");
        assert_eq!(r.target, "/estimate?x=1");
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.header("HOST"), Some("h"));
        assert_eq!(r.body, b"abcd");
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_a_get_without_body_and_lenient_lf() {
        let r = parse_ok(b"GET /healthz HTTP/1.1\nConnection: close\n\n");
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
        assert!(r.wants_close());
    }

    #[test]
    fn clean_eof_and_garbage_are_distinguished() {
        assert!(matches!(parse(b"").unwrap(), ReadOutcome::Closed));
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n"),
            Err(NetError::BadRequestLine { .. })
        ));
        assert!(matches!(
            parse(b"GET noslash HTTP/1.1\r\n\r\n"),
            Err(NetError::BadRequestLine { .. })
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(NetError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbad header line\r\n\r\n"),
            Err(NetError::BadHeader { .. })
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_stage() {
        // Mid request line.
        assert!(matches!(parse(b"GET /he"), Err(NetError::TruncatedRequest)));
        // Mid header block.
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: h\r\n"),
            Err(NetError::TruncatedRequest)
        ));
        // Mid body.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(NetError::TruncatedBody {
                expected: 10,
                got: 3
            })
        ));
    }

    #[test]
    fn limits_are_enforced_with_typed_refusals() {
        let limits = WireLimits {
            max_head_bytes: 64,
            max_headers: 2,
            max_body_bytes: 8,
        };
        let parse = |bytes: &[u8]| read_request(&mut BufReader::new(bytes), &limits);
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert!(matches!(
            parse(long.as_bytes()),
            Err(NetError::HeadersTooLarge { .. })
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n"),
            Err(NetError::TooManyHeaders { limit: 2 })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"),
            Err(NetError::BodyTooLarge {
                declared: 9,
                limit: 8
            })
        ));
    }

    #[test]
    fn content_length_pathologies_are_refused() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(NetError::BadContentLength { .. })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nxx"),
            Err(NetError::BadContentLength { .. })
        ));
        // A POST with no length at all cannot be framed.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\n\r\n"),
            Err(NetError::BadContentLength { .. })
        ));
        // Duplicates that agree are fine.
        let r = parse_ok(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
        assert_eq!(r.body, b"ok");
        // Chunked is a typed refusal, not a hang.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(NetError::BadHeader { .. })
        ));
    }

    #[test]
    fn responses_round_trip_through_the_writer_and_reader() {
        let mut wire = Vec::new();
        write_response(&mut wire, 429, r#"{"error":{}}"#, false).unwrap();
        let resp =
            read_response(&mut BufReader::new(wire.as_slice()), &WireLimits::default()).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body_str().unwrap(), r#"{"error":{}}"#);
        assert!(!resp.closes_connection());

        let mut wire = Vec::new();
        write_response(&mut wire, 503, "{}", true).unwrap();
        let resp =
            read_response(&mut BufReader::new(wire.as_slice()), &WireLimits::default()).unwrap();
        assert!(resp.closes_connection());
    }

    #[test]
    fn requests_round_trip_through_the_writer_and_reader() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/estimate", Some(r#"{"a":1}"#)).unwrap();
        let r = parse_ok(&wire);
        assert_eq!(r.method, "POST");
        assert_eq!(r.body_str().unwrap(), r#"{"a":1}"#);
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/stats", None).unwrap();
        let r = parse_ok(&wire);
        assert_eq!((r.method.as_str(), r.path()), ("GET", "/stats"));
    }

    #[test]
    fn malformed_responses_are_protocol_errors() {
        for bad in [&b"junk\r\n\r\n"[..], b"HTTP/1.1 xyz OK\r\n\r\n", b""] {
            let got = read_response(&mut BufReader::new(bad), &WireLimits::default());
            assert!(matches!(got, Err(NetError::Protocol { .. })), "{bad:?}");
        }
    }
}
