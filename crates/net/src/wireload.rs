//! Networked load generation: the [`ccdp_serve::LoadSpec`] workload driven
//! over real sockets.
//!
//! [`WireLoadSpec`] reuses the serve tier's deterministic workload
//! description — same fleet, same tenant mix, same seeded schedule — but
//! each closed-loop client is a [`NetClient`] on its own OS thread talking
//! HTTP/1.1 to a [`crate::NetServer`] address. What the in-process load
//! generator observes as typed `ServeError`s arrives here as wire statuses:
//! `429 queue_full` is retried with backoff (counted), `403
//! budget_exhausted` is a terminal refusal (counted, never retried), and
//! anything else is a failure. Latencies are measured client-side —
//! connect-to-decoded-response, the number a real tenant would see — in the
//! same lock-free [`LatencyHistogram`] the server uses, so p50/p99 carry
//! identical bucket semantics on both sides of the wire.

use crate::client::NetClient;
use crate::error::NetError;
use ccdp_serve::json::JsonWriter;
use ccdp_serve::{BudgetLedger, GraphId, GraphRegistry, LatencyHistogram, LoadSpec};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A [`LoadSpec`] workload executed over the wire.
#[derive(Clone, Debug)]
pub struct WireLoadSpec {
    /// The workload: fleet, tenants, client count, schedule, seed. The
    /// embedded `server` config is ignored here — the target server is
    /// whoever answers at the address given to [`run`](Self::run).
    pub base: LoadSpec,
    /// How many times one request retries `429 queue_full` before counting
    /// as a failure.
    pub max_retries: usize,
    /// Sleep between backpressure retries.
    pub retry_backoff: Duration,
}

impl WireLoadSpec {
    /// Wraps a workload with default retry policy (64 retries, 500 µs
    /// backoff — enough patience that transient queue pressure never fails
    /// a CI run, bounded so a wedged server cannot hang one).
    pub fn new(base: LoadSpec) -> Self {
        WireLoadSpec {
            base,
            max_retries: 64,
            retry_backoff: Duration::from_micros(500),
        }
    }

    /// The fixed net-smoke workload: the serve tier's CI fleet and tenant
    /// mix, scaled to 32 socket clients and 512 requests.
    pub fn ci_smoke() -> Self {
        let mut base = LoadSpec::ci_smoke();
        base.clients = 32;
        base.requests = 512;
        // The quota mix keeps its CI shape: three tenants fund their whole
        // share, `burst` exhausts partway — refusals double at double the
        // request count, so scale the funded quotas with the schedule.
        for t in &mut base.tenants {
            if t.name != "burst" {
                t.quota_epsilon *= 2.0;
            }
        }
        WireLoadSpec::new(base)
    }

    /// Provisions the fleet and tenants into a server's registry and ledger
    /// (delegates to [`LoadSpec::provision`]).
    pub fn provision(&self, registry: &GraphRegistry, ledger: &BudgetLedger) -> Vec<GraphId> {
        self.base.provision(registry, ledger)
    }

    /// Runs the workload against the listener at `addr` (whose server must
    /// already hold this spec's fleet — see [`provision`](Self::provision))
    /// and returns the client-side report.
    pub fn run(&self, addr: SocketAddr) -> WireLoadReport {
        let schedule = self.base.schedule(&self.base.graph_ids());
        let clients = self.base.clients.max(1);
        let histogram = Arc::new(LatencyHistogram::new());
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mine: Vec<_> = schedule.iter().skip(c).step_by(clients).cloned().collect();
                let histogram = Arc::clone(&histogram);
                let max_retries = self.max_retries;
                let backoff = self.retry_backoff;
                std::thread::spawn(move || {
                    let mut client = NetClient::connect(addr);
                    let mut outcomes = WireOutcomes::default();
                    for request in mine {
                        let version = request.version.map(|v| v.value());
                        let sent = Instant::now();
                        let mut retries = 0;
                        let outcome = loop {
                            match client.estimate(
                                request.tenant.as_str(),
                                request.graph.as_str(),
                                request.epsilon,
                                version,
                            ) {
                                Ok(est) => break Ok(est),
                                Err(NetError::Api { status: 429, .. }) if retries < max_retries => {
                                    retries += 1;
                                    outcomes.backpressure_retries += 1;
                                    std::thread::sleep(backoff);
                                }
                                Err(e) => break Err(e),
                            }
                        };
                        match outcome {
                            Ok(_) => {
                                // Only answered requests are latency samples;
                                // a refusal's round trip measures the error
                                // path, not serving.
                                histogram.record(sent.elapsed());
                                outcomes.completed += 1;
                            }
                            Err(NetError::Api { code, .. }) if code == "budget_exhausted" => {
                                outcomes.budget_refusals += 1;
                            }
                            Err(_) => outcomes.failed += 1,
                        }
                    }
                    outcomes
                })
            })
            .collect();
        let mut outcomes = WireOutcomes::default();
        for h in handles {
            outcomes.absorb(h.join().expect("wire load client panicked"));
        }
        let wall_clock = started.elapsed();
        WireLoadReport {
            spec_requests: self.base.requests,
            clients,
            completed: outcomes.completed,
            budget_refusals: outcomes.budget_refusals,
            failed: outcomes.failed,
            backpressure_retries: outcomes.backpressure_retries,
            wall_clock,
            throughput_rps: if wall_clock.as_secs_f64() > 0.0 {
                outcomes.completed as f64 / wall_clock.as_secs_f64()
            } else {
                0.0
            },
            p50_latency: histogram.quantile(0.50),
            p99_latency: histogram.quantile(0.99),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct WireOutcomes {
    completed: u64,
    budget_refusals: u64,
    failed: u64,
    backpressure_retries: u64,
}

impl WireOutcomes {
    fn absorb(&mut self, other: WireOutcomes) {
        self.completed += other.completed;
        self.budget_refusals += other.budget_refusals;
        self.failed += other.failed;
        self.backpressure_retries += other.backpressure_retries;
    }
}

/// Client-side summary of one [`WireLoadSpec::run`].
#[derive(Clone, Debug)]
pub struct WireLoadReport {
    /// Requests the spec scheduled.
    pub spec_requests: usize,
    /// Socket clients that drove them.
    pub clients: usize,
    /// Requests answered with a release.
    pub completed: u64,
    /// Requests refused `403 budget_exhausted` (typed, never retried).
    pub budget_refusals: u64,
    /// Requests that failed any other way (including retries exhausted).
    pub failed: u64,
    /// Total `429 queue_full` retries across all clients.
    pub backpressure_retries: u64,
    /// Wall-clock time of the whole run.
    pub wall_clock: Duration,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Client-side median latency (send → decoded response).
    pub p50_latency: Duration,
    /// Client-side 99th-percentile latency.
    pub p99_latency: Duration,
}

impl WireLoadReport {
    /// Whether every scheduled request was answered one way or another.
    pub fn is_complete(&self) -> bool {
        self.completed + self.budget_refusals + self.failed == self.spec_requests as u64
    }

    /// Serializes the report through the shared [`ccdp_serve::json`] writer,
    /// field-compatible with [`ccdp_serve::LoadReport::to_json`] where the
    /// metrics coincide.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_u64("requests", self.spec_requests as u64)
            .field_u64("clients", self.clients as u64)
            .field_u64("completed", self.completed)
            .field_u64("budget_refusals", self.budget_refusals)
            .field_u64("failed", self.failed)
            .field_u64("backpressure_retries", self.backpressure_retries)
            .field_f64_rounded("wall_clock_s", self.wall_clock.as_secs_f64(), 6)
            .field_f64_rounded("throughput_rps", self.throughput_rps, 3)
            .field_f64_rounded("p50_latency_ms", self.p50_latency.as_secs_f64() * 1e3, 3)
            .field_f64_rounded("p99_latency_ms", self.p99_latency.as_secs_f64() * 1e3, 3);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetConfig, NetServer};
    use ccdp_serve::{GraphSpec, ServeConfig, Server, TenantSpec};

    fn small_spec() -> WireLoadSpec {
        WireLoadSpec::new(LoadSpec {
            graphs: vec![GraphSpec::Path { n: 16 }, GraphSpec::Star { leaves: 8 }],
            tenants: vec![
                TenantSpec {
                    name: "t".into(),
                    quota_epsilon: 100.0,
                    weight: 1.0,
                },
                TenantSpec {
                    name: "tiny".into(),
                    // Funds roughly half of `tiny`'s share of 48 requests.
                    quota_epsilon: 2.0,
                    weight: 1.0,
                },
            ],
            clients: 6,
            requests: 48,
            epsilon_per_request: 0.2,
            seed: 9,
            server: ServeConfig::new(),
        })
    }

    #[test]
    fn wire_load_runs_to_completion_with_typed_refusals() {
        let spec = small_spec();
        let registry = Arc::new(GraphRegistry::new());
        let ledger = Arc::new(BudgetLedger::new());
        spec.provision(&registry, &ledger);
        let server = Arc::new(Server::start(
            ServeConfig::new().with_workers(4).with_queue_capacity(32),
            registry,
            ledger,
        ));
        let net = NetServer::start(NetConfig::new(), server).unwrap();

        let report = spec.run(net.local_addr());
        assert!(report.is_complete(), "{report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        assert!(report.completed >= 30, "{report:?}");
        assert!(
            report.budget_refusals > 0,
            "the tiny tenant must hit its quota: {report:?}"
        );
        assert!(report.p99_latency >= report.p50_latency);

        let json = ccdp_serve::json::parse(&report.to_json()).unwrap();
        assert_eq!(
            json.get("completed").and_then(|v| v.as_u64()),
            Some(report.completed)
        );
        assert_eq!(json.get("failed").and_then(|v| v.as_u64()), Some(0));

        // The wire counters saw exactly the client fleet.
        let stats = net.shutdown();
        assert_eq!(stats.accepted, spec.base.clients as u64);
    }
}
