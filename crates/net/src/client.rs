//! A blocking, typed client for the wire front-end.
//!
//! [`NetClient`] speaks the same hand-rolled HTTP/1.1 as the listener:
//! lazy connect, keep-alive reuse, one transparent reconnect when a reused
//! connection turns out to have been closed under us (the only retry the
//! client ever does on its own — a request that *reached* the server is
//! never silently resent). Responses decode into typed structs; every
//! non-2xx decodes the server's `{"error":{code,message}}` body into
//! [`NetError::Api`], so callers match on stable codes, not substrings.

use crate::error::NetError;
use crate::http::{self, Response, WireLimits};
use ccdp_serve::json::{JsonValue, JsonWriter};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Resolves `addr` (e.g. `127.0.0.1:8787` or `localhost:8787`) to a socket
/// address, as a typed error rather than an io panic.
pub fn resolve(addr: &str) -> Result<SocketAddr, NetError> {
    addr.to_socket_addrs()
        .map_err(|e| NetError::Io {
            detail: format!("cannot resolve `{addr}`: {e}"),
        })?
        .next()
        .ok_or_else(|| NetError::Io {
            detail: format!("`{addr}` resolved to no address"),
        })
}

/// The decoded answer of `POST /estimate`.
#[derive(Clone, Debug)]
pub struct EstimateResponse {
    /// Server-assigned request id.
    pub request_id: u64,
    /// The tenant that funded the release.
    pub tenant: String,
    /// The graph released on.
    pub graph: String,
    /// The private estimate.
    pub value: f64,
    /// The estimator that produced it.
    pub estimator: String,
    /// The ε spent (absent for non-private baselines).
    pub epsilon: Option<f64>,
    /// The snapshot version served from.
    pub version: Option<u64>,
    /// Server-side end-to-end latency in milliseconds (queue included).
    pub latency_ms: f64,
    /// The request's trace id (the `X-Ccdp-Trace` header / `trace` body
    /// field), when the server traced it. Feed it to
    /// [`NetClient::trace`] / `GET /trace/{id}`.
    pub trace: Option<String>,
}

/// The decoded answer of `POST /ingest`.
#[derive(Clone, Debug)]
pub struct IngestResponse {
    /// The catalog id published under.
    pub graph: String,
    /// The version the snapshot landed at.
    pub version: u64,
    /// Parsed vertex count.
    pub vertices: u64,
    /// Parsed edge count.
    pub edges: u64,
}

/// The decoded answer of `GET /healthz`.
#[derive(Clone, Debug)]
pub struct HealthResponse {
    /// `ok` when ready, `degraded` otherwise.
    pub status: String,
    /// Readiness verdict: accepting, catalog non-empty, not draining.
    pub ready: bool,
    /// Whether the worker pool accepts submissions.
    pub accepting: bool,
    /// Whether the listener is draining for shutdown.
    pub draining: bool,
    /// Catalog size.
    pub graphs: u64,
}

/// One keep-alive connection to a [`crate::NetServer`] (or anything speaking
/// its protocol).
pub struct NetClient {
    addr: SocketAddr,
    limits: WireLimits,
    timeout: Duration,
    conn: Option<Conn>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl NetClient {
    /// A client for `addr`. No connection is made until the first request.
    pub fn connect(addr: SocketAddr) -> Self {
        NetClient {
            addr,
            limits: WireLimits::default(),
            timeout: Duration::from_secs(30),
            conn: None,
        }
    }

    /// Overrides the per-read socket timeout (default 30 s — an estimate
    /// blocks server-side until a worker finishes it).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout.max(Duration::from_millis(10));
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `POST /estimate`: one private release through the worker pool.
    pub fn estimate(
        &mut self,
        tenant: &str,
        graph: &str,
        epsilon: f64,
        version: Option<u64>,
    ) -> Result<EstimateResponse, NetError> {
        let mut w = JsonWriter::object();
        w.field_str("tenant", tenant)
            .field_str("graph", graph)
            .field_f64("epsilon", epsilon);
        if let Some(v) = version {
            w.field_u64("version", v);
        }
        let response = self.request("POST", "/estimate", Some(&w.finish()))?;
        let trace = response.header("x-ccdp-trace").map(str::to_string);
        let body = decode(response)?;
        Ok(EstimateResponse {
            request_id: field_u64(&body, "request_id")?,
            tenant: field_str(&body, "tenant")?,
            graph: field_str(&body, "graph")?,
            value: field_f64(&body, "value")?,
            estimator: field_str(&body, "estimator")?,
            epsilon: body.get("epsilon").and_then(JsonValue::as_f64),
            version: body.get("version").and_then(JsonValue::as_u64),
            latency_ms: field_f64(&body, "latency_ms")?,
            trace,
        })
    }

    /// `POST /ingest`: publish an edge-list snapshot (pinned when `version`
    /// is given, latest-plus-one otherwise).
    pub fn ingest(
        &mut self,
        graph: &str,
        edges: &str,
        version: Option<u64>,
    ) -> Result<IngestResponse, NetError> {
        let mut w = JsonWriter::object();
        w.field_str("graph", graph).field_str("edges", edges);
        if let Some(v) = version {
            w.field_u64("version", v);
        }
        let body = self.post_json("/ingest", &w.finish())?;
        Ok(IngestResponse {
            graph: field_str(&body, "graph")?,
            version: field_u64(&body, "version")?,
            vertices: field_u64(&body, "vertices")?,
            edges: field_u64(&body, "edges")?,
        })
    }

    /// `GET /stats`: the server's full counter tree, as parsed JSON.
    pub fn stats(&mut self) -> Result<JsonValue, NetError> {
        self.get_json("/stats")
    }

    /// `GET /metrics`: the Prometheus text exposition of every registered
    /// series, verbatim.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        self.get_text("/metrics")
    }

    /// `GET /trace/{id}`: the assembled span tree of one traced request,
    /// as parsed JSON (`404 unknown_trace` once the ring has wrapped).
    pub fn trace(&mut self, id: &str) -> Result<JsonValue, NetError> {
        self.get_json(&format!("/trace/{id}"))
    }

    /// `GET /audit/{tenant}`: the tenant's audit events, live account, and
    /// replay verdict, as parsed JSON (`404 unknown_tenant` for strangers).
    pub fn audit(&mut self, tenant: &str) -> Result<JsonValue, NetError> {
        self.get_json(&format!("/audit/{tenant}"))
    }

    /// `GET /slo`: declared specs, every `(spec, tenant, window)` status,
    /// and the full alert history, as parsed JSON. Evaluates server-side,
    /// so pending breaches fire (and land in the journal) on this call.
    pub fn slo(&mut self) -> Result<JsonValue, NetError> {
        self.get_json("/slo")
    }

    /// `GET /healthz`: typed liveness/readiness.
    pub fn health(&mut self) -> Result<HealthResponse, NetError> {
        let body = self.get_json("/healthz")?;
        Ok(HealthResponse {
            status: field_str(&body, "status")?,
            ready: field_bool(&body, "ready")?,
            accepting: field_bool(&body, "accepting")?,
            draining: field_bool(&body, "draining")?,
            graphs: field_u64(&body, "graphs")?,
        })
    }

    /// `GET` any path and decode the JSON answer (2xx) or the typed error.
    pub fn get_json(&mut self, path: &str) -> Result<JsonValue, NetError> {
        let response = self.request("GET", path, None)?;
        decode(response)
    }

    /// `GET` any path and return the raw 2xx body (non-JSON surfaces like
    /// `/metrics`); non-2xx still decodes the typed error envelope.
    pub fn get_text(&mut self, path: &str) -> Result<String, NetError> {
        let response = self.request("GET", path, None)?;
        if (200..300).contains(&response.status) {
            Ok(response.body_str()?.to_string())
        } else {
            Err(decode_error(&response))
        }
    }

    /// `POST` a JSON body to any path and decode the answer.
    pub fn post_json(&mut self, path: &str, body: &str) -> Result<JsonValue, NetError> {
        let response = self.request("POST", path, Some(body))?;
        decode(response)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, NetError> {
        let reused = self.conn.is_some();
        match self.try_request(method, path, body) {
            Ok(resp) => Ok(resp),
            // A reused keep-alive connection may have been closed by the
            // server between requests; one reconnect on a *fresh* connection
            // is safe — the failed attempt never reached a live socket.
            Err(_) if reused => {
                self.conn = None;
                self.try_request(method, path, body)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, NetError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            // Requests are single buffered frames; don't let Nagle hold them.
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some(Conn {
                reader,
                writer: stream,
            });
        }
        let conn = self.conn.as_mut().expect("connection established above");
        http::write_request(&mut conn.writer, method, path, body).map_err(NetError::from)?;
        let response = match http::read_response(&mut conn.reader, &self.limits) {
            Ok(r) => r,
            Err(e) => {
                self.conn = None;
                return Err(e);
            }
        };
        if response.closes_connection() {
            self.conn = None;
        }
        Ok(response)
    }
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

/// 2xx → parsed body; anything else → [`NetError::Api`] decoded from the
/// standard error envelope (or a protocol error if the envelope is absent).
fn decode(response: Response) -> Result<JsonValue, NetError> {
    if (200..300).contains(&response.status) {
        let text = response.body_str()?;
        return ccdp_serve::json::parse(text).map_err(|e| NetError::Protocol {
            detail: format!("2xx body is not JSON: {e}"),
        });
    }
    Err(decode_error(&response))
}

/// Decodes a non-2xx response's `{"error":{code,message,trace?}}` envelope.
fn decode_error(response: &Response) -> NetError {
    let text = match response.body_str() {
        Ok(t) => t,
        Err(e) => return e,
    };
    let (code, message, trace) = match ccdp_serve::json::parse(text) {
        Ok(body) => {
            let err = body.get("error");
            (
                err.and_then(|e| e.get("code"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                err.and_then(|e| e.get("message"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or(text)
                    .to_string(),
                err.and_then(|e| e.get("trace"))
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
            )
        }
        Err(_) => ("unknown".to_string(), text.to_string(), None),
    };
    NetError::Api {
        status: response.status,
        code,
        message,
        trace: trace.or_else(|| response.header("x-ccdp-trace").map(str::to_string)),
    }
}

fn field_str(body: &JsonValue, field: &'static str) -> Result<String, NetError> {
    body.get(field)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(field))
}

fn field_u64(body: &JsonValue, field: &'static str) -> Result<u64, NetError> {
    body.get(field)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| missing(field))
}

fn field_f64(body: &JsonValue, field: &'static str) -> Result<f64, NetError> {
    body.get(field)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| missing(field))
}

fn field_bool(body: &JsonValue, field: &'static str) -> Result<bool, NetError> {
    body.get(field)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| missing(field))
}

fn missing(field: &'static str) -> NetError {
    NetError::Protocol {
        detail: format!("response is missing field `{field}`"),
    }
}
