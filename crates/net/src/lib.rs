//! # ccdp-net — the wire-level serving front-end
//!
//! The first out-of-process surface of the ccdp stack: a dependency-free
//! HTTP/1.1 tier over [`std::net::TcpListener`] in front of the
//! [`ccdp_serve::Server`] worker pool, plus the matching typed client and a
//! networked load generator. Everything is hand-rolled on `std` — the wire
//! framing, the JSON codec (shared with the serve tier via
//! [`ccdp_serve::json`]), the connection management — because the build
//! environment grants no registry access, and because a serving tier this
//! small is easier to make *total* (every malformed byte stream a typed
//! refusal, never a panic) than to wrap.
//!
//! * [`http`] — bounded HTTP/1.1 request/response framing ([`WireLimits`]).
//! * [`server`] — [`NetServer`]: thread-per-connection accept loop with a
//!   connection cap, routing `POST /estimate`, `POST /ingest`, `GET /stats`
//!   and `GET /healthz` into the worker pool; queue backpressure surfaces as
//!   `429`, budget exhaustion as `403`, drain as `503`. Shutdown completes
//!   every in-flight request before the listener joins.
//! * [`client`] — [`NetClient`]: blocking keep-alive client with typed
//!   responses; non-2xx answers decode to [`NetError::Api`] with the
//!   server's stable error code.
//! * [`wireload`] — [`WireLoadSpec`]: the serve tier's deterministic
//!   workload driven over real sockets by concurrent clients, reporting
//!   client-side req/s and p50/p99.
//! * [`error`] — [`NetError`]: the typed failure surface and its HTTP
//!   status/code mapping ([`serve_error_status`]).

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod http;
pub mod server;
pub mod wireload;

/// The shared hand-rolled JSON codec (re-exported from the serve tier: one
/// writer for every JSON byte the stack emits, one parser for every byte it
/// accepts).
pub use ccdp_serve::json;

pub use client::{EstimateResponse, HealthResponse, IngestResponse, NetClient};
pub use error::{serve_error_status, NetError};
pub use http::{Request, Response, WireLimits};
pub use server::{NetConfig, NetServer, NetStatsSnapshot};
pub use wireload::{WireLoadReport, WireLoadSpec};
