//! The wire front-end: a TCP listener feeding the [`Server`] worker pool.
//!
//! [`NetServer::start`] binds a [`std::net::TcpListener`] and runs a
//! thread-per-connection accept loop with a hard connection cap: a peer
//! beyond the cap is answered `503 connection_cap` and closed, never
//! silently queued. Each connection thread speaks keep-alive HTTP/1.1
//! ([`crate::http`]) and routes
//!
//! * `POST /estimate` — submit a [`ServeRequest`] to the worker pool and
//!   block this connection (only) until the release arrives; queue
//!   backpressure surfaces as `429`, budget exhaustion as `403`,
//! * `POST /ingest`  — publish an edge-list snapshot into the catalog,
//! * `GET /stats`    — the pool, cache, catalog and wire counters,
//! * `GET /healthz`  — liveness always, plus a `ready` verdict (pool
//!   accepting, catalog non-empty, not draining).
//!
//! Shutdown drains: [`NetServer::shutdown`] flips the draining flag, wakes
//! the accept loop with a self-connection, answers new connections (and idle
//! keep-alive peers) `503 draining`, waits for every in-flight connection to
//! finish its current request, and only then joins the listener thread. No
//! accepted request is ever dropped mid-flight.

use crate::error::NetError;
use crate::http::{self, ReadOutcome, Request, WireLimits};
use ccdp_graph::GraphVersion;
use ccdp_obs::{replay_tenant, AuditEvent, Counter, MetricsRegistry, Span, TraceId, TraceTree};
use ccdp_serve::json::{self, JsonValue, JsonWriter};
use ccdp_serve::{ServeRequest, Server};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`NetServer`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    addr: String,
    max_connections: usize,
    limits: WireLimits,
    read_timeout: Duration,
}

impl NetConfig {
    /// Defaults: an OS-assigned loopback port, 64 concurrent connections,
    /// default wire limits, 500 ms read timeout (the keep-alive poll
    /// interval, which bounds how long an idle peer can delay a drain).
    pub fn new() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            limits: WireLimits::default(),
            read_timeout: Duration::from_millis(500),
        }
    }

    /// The bind address, e.g. `127.0.0.1:8787` (`:0` lets the OS pick).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// The concurrent-connection cap (clamped to ≥ 1); connections beyond it
    /// are answered `503 connection_cap`.
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// Wire parsing limits (head bytes, header count, body bytes).
    pub fn with_limits(mut self, limits: WireLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The socket read timeout (also the drain poll interval for idle
    /// keep-alive connections); clamped to ≥ 10 ms.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout.max(Duration::from_millis(10));
        self
    }

    /// The configured connection cap.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Wire-tier counters. Each lives in the backing server's
/// [`MetricsRegistry`] as a `ccdp_net_*` series, so `GET /metrics` exposes
/// the wire island alongside serve/cache/budget/phase; [`NetStatsSnapshot`]
/// reads the same handles.
#[derive(Debug)]
struct NetCounters {
    accepted: Counter,
    refused_cap: Counter,
    refused_draining: Counter,
    requests: Counter,
    responses_ok: Counter,
    responses_client_error: Counter,
    responses_server_error: Counter,
}

impl NetCounters {
    fn registered(registry: &MetricsRegistry) -> Self {
        NetCounters {
            accepted: registry.counter("ccdp_net_connections_accepted_total"),
            refused_cap: registry.counter("ccdp_net_connections_refused_cap_total"),
            refused_draining: registry.counter("ccdp_net_connections_refused_draining_total"),
            requests: registry.counter("ccdp_net_requests_total"),
            responses_ok: registry.counter("ccdp_net_responses_ok_total"),
            responses_client_error: registry.counter("ccdp_net_responses_client_error_total"),
            responses_server_error: registry.counter("ccdp_net_responses_server_error_total"),
        }
    }
}

/// Point-in-time wire-tier counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections refused at the cap (`503 connection_cap`).
    pub refused_cap: u64,
    /// Connections refused while draining (`503 draining`).
    pub refused_draining: u64,
    /// Requests parsed off the wire (including ones answered with 4xx).
    pub requests: u64,
    /// `2xx` responses written.
    pub responses_ok: u64,
    /// `4xx` responses written.
    pub responses_client_error: u64,
    /// `5xx` responses written.
    pub responses_server_error: u64,
}

struct Shared {
    server: Arc<Server>,
    config: NetConfig,
    draining: AtomicBool,
    /// Count of live connection threads, guarded for the drain rendezvous.
    active: Mutex<usize>,
    idle: Condvar,
    counters: NetCounters,
}

impl Shared {
    fn snapshot(&self) -> NetStatsSnapshot {
        let c = &self.counters;
        NetStatsSnapshot {
            accepted: c.accepted.get(),
            refused_cap: c.refused_cap.get(),
            refused_draining: c.refused_draining.get(),
            requests: c.requests.get(),
            responses_ok: c.responses_ok.get(),
            responses_client_error: c.responses_client_error.get(),
            responses_server_error: c.responses_server_error.get(),
        }
    }

    fn count_response(&self, status: u16) {
        let c = &self.counters;
        match status {
            200..=299 => c.responses_ok.inc(),
            400..=499 => c.responses_client_error.inc(),
            _ => c.responses_server_error.inc(),
        };
    }
}

/// Decrements the active-connection count (and wakes the drain rendezvous)
/// however the connection thread exits, panics included.
struct ActiveGuard(Arc<Shared>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        let mut active = self.0.active.lock().unwrap_or_else(|p| p.into_inner());
        *active -= 1;
        self.0.idle.notify_all();
    }
}

/// A running wire front-end over one [`Server`].
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds the listener and starts the accept loop.
    ///
    /// # Errors
    /// The bind error, if the address is unusable.
    pub fn start(config: NetConfig, server: Arc<Server>) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let counters = NetCounters::registered(server.metrics());
        let shared = Arc::new(Shared {
            server,
            config,
            draining: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
            counters,
        });
        let loop_shared = Arc::clone(&shared);
        let listener_thread = std::thread::spawn(move || accept_loop(&listener, &loop_shared));
        Ok(NetServer {
            local_addr,
            shared,
            listener_thread: Some(listener_thread),
        })
    }

    /// The bound address (useful with `:0` bindings).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The backing worker pool.
    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Point-in-time wire counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.snapshot()
    }

    /// Whether shutdown has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and stops the listener: new connections are answered
    /// `503 draining`, every in-flight request runs to completion, then the
    /// accept loop joins. Returns the final wire counters. The backing
    /// [`Server`] is *not* shut down — it belongs to the caller.
    pub fn shutdown(mut self) -> NetStatsSnapshot {
        self.shutdown_in_place();
        self.shared.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        if self.shared.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is blocked in accept(); a throwaway self-connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
        // Drain rendezvous: every connection thread finishes its in-flight
        // request (idle keep-alive peers notice the flag within one read
        // timeout) and the guard drops the count to zero.
        let mut active = self.shared.active.lock().unwrap_or_else(|p| p.into_inner());
        while *active > 0 {
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(active, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner());
            active = guard;
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("draining", &self.is_draining())
            .field("stats", &self.shared.snapshot())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Transient accept failures (EMFILE, aborted handshakes) must
                // not kill the listener; only a drain ends the loop.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            refuse(stream, shared, NetError::Draining);
            // Keep looping until the drain flag is the reason accept woke:
            // the wake connection itself lands here and ends the loop.
            return;
        }
        {
            let mut active = shared.active.lock().unwrap_or_else(|p| p.into_inner());
            if *active >= shared.config.max_connections {
                drop(active);
                refuse(
                    stream,
                    shared,
                    NetError::ConnectionCap {
                        limit: shared.config.max_connections,
                    },
                );
                continue;
            }
            *active += 1;
        }
        shared.counters.accepted.inc();
        let conn_shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let _guard = ActiveGuard(Arc::clone(&conn_shared));
            connection_loop(stream, &conn_shared);
        });
    }
}

/// Answers a connection we will not serve with one typed refusal and closes
/// it. Best-effort: the peer may already be gone.
fn refuse(mut stream: TcpStream, shared: &Shared, error: NetError) {
    match &error {
        NetError::Draining => &shared.counters.refused_draining,
        _ => &shared.counters.refused_cap,
    }
    .inc();
    let body = json::error_body(error.code(), &error.to_string());
    let _ = http::write_response(&mut stream, error.http_status(), &body, true);
}

/// The per-connection keep-alive loop: parse, route, answer, repeat.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    // Responses are single buffered frames; Nagle would only add latency.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let draining = shared.draining.load(Ordering::SeqCst);
        let request = match http::read_request(&mut reader, &shared.config.limits) {
            Ok(ReadOutcome::Request(r)) => r,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Idle) => {
                if draining {
                    // An idle keep-alive peer must not stall the drain: tell
                    // it we are going away and close.
                    let body = json::error_body("draining", &NetError::Draining.to_string());
                    let _ = http::write_response(&mut writer, 503, &body, true);
                    return;
                }
                continue;
            }
            Err(e) => {
                // A malformed wire leaves the connection unframed: answer
                // typed and close — never guess where the next request starts.
                shared.counters.requests.inc();
                let status = e.http_status();
                shared.count_response(status);
                let body = json::error_body(e.code(), &e.to_string());
                let _ = http::write_response(&mut writer, status, &body, true);
                return;
            }
        };
        shared.counters.requests.inc();
        // A request already parsed is in-flight: draining lets it complete
        // but closes the connection behind it.
        let close = request.wants_close() || draining;
        let reply = route(&request, shared);
        shared.count_response(reply.status);
        let written = http::write_response_with(
            &mut writer,
            reply.status,
            &reply.body,
            reply.content_type,
            &reply.headers,
            close,
        );
        if written.is_err() || close {
            return;
        }
    }
}

/// One routed answer: status, body, content type and extra headers
/// (`X-Ccdp-Trace` on traced `/estimate` answers, successes and refusals
/// alike).
struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
    headers: Vec<(String, String)>,
}

impl Reply {
    fn json(body: String) -> Self {
        Reply {
            status: 200,
            body,
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// Prometheus text exposition (the content type its scrapers expect).
    fn exposition(body: String) -> Self {
        Reply {
            status: 200,
            body,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
        }
    }

    fn error(e: &NetError) -> Self {
        Reply {
            status: e.http_status(),
            body: json::error_body(e.code(), &e.to_string()),
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// An error envelope that names the request's trace id — a refused
    /// request (429/403) is traced too, and the peer needs the id to pull
    /// the trace.
    fn error_traced(e: &NetError, trace: Option<TraceId>) -> Self {
        let mut reply = match trace {
            Some(id) => {
                let mut w = JsonWriter::object();
                w.begin_object("error")
                    .field_str("code", e.code())
                    .field_str("message", &e.to_string())
                    .field_str("trace", &id.to_string())
                    .end();
                Reply {
                    status: e.http_status(),
                    body: w.finish(),
                    content_type: "application/json",
                    headers: Vec::new(),
                }
            }
            None => Reply::error(e),
        };
        reply.attach_trace(trace);
        reply
    }

    fn attach_trace(&mut self, trace: Option<TraceId>) {
        if let Some(id) = trace {
            self.headers.push(("X-Ccdp-Trace".into(), id.to_string()));
        }
    }
}

/// Dispatches one parsed request to its route.
fn route(request: &Request, shared: &Shared) -> Reply {
    let result = match (request.method.as_str(), request.path()) {
        ("POST", "/estimate") => return route_estimate(request, shared),
        ("POST", "/ingest") => route_ingest(request, shared).map(Reply::json),
        ("GET", "/stats") => Ok(Reply::json(stats_body(shared))),
        ("GET", "/healthz") => Ok(Reply::json(healthz_body(shared))),
        // render_metrics (not the raw registry) so ring-drop counters are
        // refreshed on every scrape.
        ("GET", "/metrics") => Ok(Reply::exposition(shared.server.render_metrics())),
        ("GET", "/slo") => Ok(Reply::json(slo_body(shared))),
        ("GET", path) if path.starts_with("/trace/") => route_trace(path, shared).map(Reply::json),
        ("GET", path) if path.starts_with("/audit/") => route_audit(path, shared).map(Reply::json),
        (_, path @ ("/estimate" | "/ingest" | "/stats" | "/healthz" | "/metrics" | "/slo")) => {
            Err(NetError::MethodNotAllowed {
                method: request.method.clone(),
                path: path.to_string(),
            })
        }
        (_, path) if path.starts_with("/trace/") || path.starts_with("/audit/") => {
            Err(NetError::MethodNotAllowed {
                method: request.method.clone(),
                path: path.to_string(),
            })
        }
        (_, path) => Err(NetError::UnknownRoute {
            path: path.to_string(),
        }),
    };
    result.unwrap_or_else(|e| Reply::error(&e))
}

/// `POST /estimate` — `{"tenant", "graph", "epsilon", "version"?}` through
/// the worker pool; blocks this connection until the release arrives. When
/// tracing is on, the trace id is minted *here*, before submission, so even
/// a `429`/`403` refusal carries `X-Ccdp-Trace` and its trace is pullable.
fn route_estimate(request: &Request, shared: &Shared) -> Reply {
    let trace = shared
        .server
        .tracer()
        .enabled()
        .then(|| shared.server.mint_trace());
    match estimate_body(request, shared, trace) {
        Ok(body) => {
            let mut reply = Reply::json(body);
            reply.attach_trace(trace);
            reply
        }
        Err(e) => Reply::error_traced(&e, trace),
    }
}

fn estimate_body(
    request: &Request,
    shared: &Shared,
    trace: Option<TraceId>,
) -> Result<String, NetError> {
    let body = parse_body(request)?;
    let tenant = require_str(&body, "tenant")?;
    let graph = require_str(&body, "graph")?;
    let epsilon = require_f64(&body, "epsilon")?;
    let mut serve_request = ServeRequest::new(tenant, graph, epsilon);
    if let Some(v) = body.get("version") {
        let v = v.as_u64().ok_or(NetError::BadField {
            field: "version",
            detail: "must be a non-negative integer".into(),
        })?;
        serve_request = serve_request.at_version(GraphVersion::new(v));
    }
    if let Some(id) = trace {
        serve_request = serve_request.with_trace(id);
    }
    // QueueFull / ShuttingDown surface here, before anything was enqueued.
    let pending = shared.server.submit(serve_request)?;
    let response = pending.wait();
    let release = response.result?;
    let mut w = JsonWriter::object();
    w.field_u64("request_id", response.request_id)
        .field_str("tenant", tenant)
        .field_str("graph", graph)
        .field_f64("value", release.value())
        .field_str("estimator", release.estimator());
    if let Some(eps) = release.privacy().epsilon() {
        w.field_f64("epsilon", eps);
    }
    if let Some(version) = response.version {
        w.field_u64("version", version.value());
    }
    w.field_f64_rounded("latency_ms", response.latency.as_secs_f64() * 1e3, 3);
    if let Some(id) = trace {
        w.field_str("trace", &id.to_string());
    }
    Ok(w.finish())
}

/// `GET /trace/{id}` — the assembled span tree of one request, while the
/// bounded ring still holds its events.
fn route_trace(path: &str, shared: &Shared) -> Result<String, NetError> {
    let raw = &path["/trace/".len()..];
    let id: TraceId = raw.parse().map_err(|()| NetError::BadField {
        field: "trace",
        detail: "must be a hex trace id".into(),
    })?;
    let tree = shared
        .server
        .tracer()
        .assemble(id)
        .ok_or_else(|| NetError::UnknownTrace {
            id: raw.to_string(),
        })?;
    Ok(trace_body(&tree))
}

fn trace_body(tree: &TraceTree) -> String {
    fn write_span(w: &mut JsonWriter, span: &Span) {
        w.begin_element_object()
            .field_str("name", &span.name)
            .field_u64("start_micros", span.start_micros)
            .field_u64("duration_nanos", span.duration_nanos);
        if let Some(detail) = &span.detail {
            w.field_str("detail", detail);
        }
        w.begin_array("children");
        for child in &span.children {
            write_span(w, child);
        }
        w.end().end();
    }
    let mut w = JsonWriter::object();
    w.field_str("trace", &tree.id.to_string())
        .field_u64("start_micros", tree.start_micros)
        .field_u64("total_nanos", tree.total_nanos)
        .begin_array("spans");
    for span in &tree.spans {
        write_span(&mut w, span);
    }
    w.end();
    w.finish()
}

/// `GET /audit/{tenant}` — the tenant's retained audit events, their live
/// account, and the replay verdict: whether folding the journaled events
/// reconstructs the ledger's accountant bit-for-bit.
fn route_audit(path: &str, shared: &Shared) -> Result<String, NetError> {
    let raw = &path["/audit/".len()..];
    if raw.is_empty() {
        return Err(NetError::BadField {
            field: "tenant",
            detail: "must be a tenant id".into(),
        });
    }
    let tenant = ccdp_serve::TenantId::new(raw);
    let account = shared.server.ledger().audit_snapshot(&tenant)?;
    let journal = shared.server.journal();
    let events = journal.events_for_tenant(raw);
    let replay = replay_tenant(raw, &events);
    // Replay equality is only claimable while the ring has dropped nothing
    // of this tenant's history; a wrapped ring reports `complete: false`
    // rather than a spurious mismatch.
    let complete = journal.dropped() == 0;
    let matches = complete
        && replay.quota_epsilon.to_bits() == account.quota_epsilon.to_bits()
        && replay.spent_epsilon.to_bits() == account.spent_epsilon.to_bits()
        && replay.charges == account.charges
        && replay.refusals == account.refusals;
    let mut w = JsonWriter::object();
    w.field_str("tenant", raw)
        .begin_object("account")
        .field_f64("quota_epsilon", account.quota_epsilon)
        .field_f64("spent_epsilon", account.spent_epsilon)
        .field_f64_rounded("utilization", account.utilization, 6)
        .field_u64("charges", account.charges)
        .field_u64("refusals", account.refusals)
        .end()
        .begin_object("replay")
        .field_f64("quota_epsilon", replay.quota_epsilon)
        .field_f64("spent_epsilon", replay.spent_epsilon)
        .field_u64("charges", replay.charges)
        .field_u64("refusals", replay.refusals)
        .field_bool("complete", complete)
        .field_bool("matches", matches)
        .end()
        .begin_array("events");
    for event in &events {
        write_audit_event(&mut w, event);
    }
    w.end();
    Ok(w.finish())
}

fn write_audit_event(w: &mut JsonWriter, event: &AuditEvent) {
    w.begin_element_object()
        .field_u64("seq", event.seq)
        .field_u64("at_micros", event.at_micros)
        .field_str("kind", event.kind.name());
    if !event.graph.is_empty() {
        w.field_str("graph", &event.graph);
    }
    if let Some(version) = event.version {
        w.field_u64("version", version);
    }
    if !event.stage.is_empty() {
        w.field_str("stage", &event.stage);
    }
    w.field_f64("epsilon_requested", event.epsilon_requested)
        .field_f64("epsilon_granted", event.epsilon_granted);
    if let Some(trace) = event.trace {
        w.field_str("trace", &trace.to_string());
    }
    if !event.detail.is_empty() {
        w.field_str("detail", &event.detail);
    }
    w.end();
}

/// `GET /slo` — evaluates every spec now (newly fired alerts land in the
/// audit journal as a side effect, exactly as a scrape-driven alerting
/// pipeline expects), then reports the declared specs, every
/// `(spec, tenant, window)` status and the full alert history.
fn slo_body(shared: &Shared) -> String {
    let fired = shared.server.evaluate_slos();
    let statuses = shared.server.slo_statuses();
    let alerts = shared.server.slo().alerts();
    let mut w = JsonWriter::object();
    w.begin_array("specs");
    for spec in shared.server.slo().specs() {
        w.begin_element_object()
            .field_str("name", &spec.name)
            .field_str("objective", spec.objective.name())
            .begin_array("windows_micros");
        for window in &spec.windows_micros {
            w.element_f64(*window as f64);
        }
        w.end().end();
    }
    w.end().field_u64("fired_now", fired.len() as u64);
    w.begin_array("statuses");
    for s in &statuses {
        w.begin_element_object()
            .field_str("spec", &s.spec)
            .field_str("tenant", &s.tenant)
            .field_str("objective", s.objective)
            .field_u64("window_micros", s.window_micros)
            .field_f64("measured", s.measured)
            .field_f64("threshold", s.threshold)
            .field_bool("breached", s.breached)
            .field_u64("samples", s.samples)
            .end();
    }
    w.end().begin_array("alerts");
    for a in &alerts {
        w.begin_element_object()
            .field_str("spec", &a.spec)
            .field_str("tenant", &a.tenant)
            .field_str("objective", a.objective)
            .field_u64("window_micros", a.window_micros)
            .field_f64("measured", a.measured)
            .field_f64("threshold", a.threshold)
            .field_u64("at_micros", a.at_micros)
            .field_str("message", &a.message)
            .end();
    }
    w.end();
    w.finish()
}

/// `POST /ingest` — `{"graph", "edges", "version"?}` publishes an edge-list
/// snapshot: at the explicit version when pinned, else as latest-plus-one.
fn route_ingest(request: &Request, shared: &Shared) -> Result<String, NetError> {
    let body = parse_body(request)?;
    let id = require_str(&body, "graph")?;
    let edges = require_str(&body, "edges")?;
    let registry = shared.server.registry();
    let (version, graph) = match body.get("version") {
        Some(v) => {
            let v = v.as_u64().ok_or(NetError::BadField {
                field: "version",
                detail: "must be a non-negative integer".into(),
            })?;
            let version = GraphVersion::new(v);
            (
                version,
                registry.ingest_edge_list_version(id, version, edges)?,
            )
        }
        None => {
            let graph = Arc::new(
                ccdp_graph::io::from_edge_list(edges).map_err(ccdp_serve::ServeError::Ingest)?,
            );
            let gid = ccdp_serve::GraphId::new(id);
            // Publish as latest-plus-one at an *explicit* version so a lost
            // publish race is visible (VersionExists) and simply rebased,
            // instead of insert-then-read-back guessing which publish won.
            loop {
                let next = registry
                    .latest_version(&gid)
                    .map(GraphVersion::next)
                    .unwrap_or(GraphVersion::INITIAL);
                match registry.insert_version(gid.clone(), next, Arc::clone(&graph)) {
                    Ok(published) => break (next, published),
                    Err(ccdp_serve::ServeError::VersionExists { .. }) => continue,
                    Err(e) => return Err(e.into()),
                }
            }
        }
    };
    let mut w = JsonWriter::object();
    w.field_str("graph", id)
        .field_u64("version", version.value())
        .field_u64("vertices", graph.num_vertices() as u64)
        .field_u64("edges", graph.num_edges() as u64);
    Ok(w.finish())
}

/// `GET /stats` — worker pool, cache, catalog, ledger and wire counters.
fn stats_body(shared: &Shared) -> String {
    let serve = shared.server.stats();
    let cache = shared.server.cache_stats();
    let net = shared.snapshot();
    let registry = shared.server.registry();
    let mut w = JsonWriter::object();
    w.begin_object("serve")
        .field_u64("received", serve.received)
        .field_u64("completed", serve.completed)
        .field_u64("rejected_queue_full", serve.rejected_queue_full)
        .field_u64("budget_refusals", serve.budget_refusals)
        .field_u64("failed", serve.failed)
        .field_u64("queue_depth", serve.queue_depth)
        .field_u64("peak_queue_depth", serve.peak_queue_depth)
        .field_f64_rounded("throughput_rps", serve.throughput_rps, 3)
        .field_f64_rounded("p50_latency_ms", serve.p50_latency.as_secs_f64() * 1e3, 3)
        .field_f64_rounded("p99_latency_ms", serve.p99_latency.as_secs_f64() * 1e3, 3)
        .end()
        .begin_object("cache")
        .field_u64("hits", cache.hits)
        .field_u64("misses", cache.misses)
        .field_u64("coalesced", cache.coalesced)
        .field_u64("evictions", cache.evictions)
        .end()
        .begin_object("catalog")
        .field_u64("graphs", registry.len() as u64)
        .field_u64("versions", registry.num_versions() as u64)
        .field_u64("tenants", shared.server.ledger().tenants().len() as u64)
        .end()
        .begin_object("net")
        .field_u64("accepted", net.accepted)
        .field_u64("refused_cap", net.refused_cap)
        .field_u64("refused_draining", net.refused_draining)
        .field_u64("requests", net.requests)
        .field_u64("responses_ok", net.responses_ok)
        .field_u64("responses_client_error", net.responses_client_error)
        .field_u64("responses_server_error", net.responses_server_error)
        .end();
    w.finish()
}

/// `GET /healthz` — liveness is answering at all; readiness is the worker
/// pool accepting, the catalog non-empty and the listener not draining.
fn healthz_body(shared: &Shared) -> String {
    let accepting = shared.server.is_accepting();
    let draining = shared.draining.load(Ordering::SeqCst);
    let graphs = shared.server.registry().len();
    let ready = accepting && !draining && graphs > 0;
    let mut w = JsonWriter::object();
    w.field_str("status", if ready { "ok" } else { "degraded" })
        .field_bool("ready", ready)
        .field_bool("accepting", accepting)
        .field_bool("draining", draining)
        .field_u64("graphs", graphs as u64);
    w.finish()
}

fn parse_body(request: &Request) -> Result<JsonValue, NetError> {
    Ok(json::parse(request.body_str()?)?)
}

fn require_str<'a>(body: &'a JsonValue, field: &'static str) -> Result<&'a str, NetError> {
    let value = body.get(field).ok_or(NetError::MissingField { field })?;
    value.as_str().ok_or(NetError::BadField {
        field,
        detail: "must be a string".into(),
    })
}

fn require_f64(body: &JsonValue, field: &'static str) -> Result<f64, NetError> {
    let value = body.get(field).ok_or(NetError::MissingField { field })?;
    value.as_f64().ok_or(NetError::BadField {
        field,
        detail: "must be a number".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NetClient;
    use ccdp_graph::generators;
    use ccdp_serve::{BudgetLedger, GraphRegistry, ServeConfig};

    fn start_fleet() -> NetServer {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("stars", generators::planted_star_forest(10, 2, 3));
        registry.insert("path", generators::path(12));
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 100.0).unwrap();
        let server = Arc::new(Server::start(
            ServeConfig::new().with_workers(2).with_seed(7),
            registry,
            ledger,
        ));
        NetServer::start(NetConfig::new(), server).unwrap()
    }

    #[test]
    fn serves_an_estimate_over_the_wire() {
        let net = start_fleet();
        let mut client = NetClient::connect(net.local_addr());
        let est = client.estimate("acme", "stars", 0.5, None).unwrap();
        assert!(est.value.is_finite());
        assert_eq!(est.graph, "stars");
        assert_eq!(est.version, Some(0));
        let stats = net.shutdown();
        assert_eq!(stats.responses_ok, 1);
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn ingest_health_and_stats_round_trip() {
        let net = start_fleet();
        let mut client = NetClient::connect(net.local_addr());
        let health = client.health().unwrap();
        assert!(health.ready && health.accepting && !health.draining);
        assert_eq!(health.graphs, 2);

        let ingested = client
            .ingest("tri", "# 3 3\n0 1\n1 2\n0 2\n", None)
            .unwrap();
        assert_eq!((ingested.vertices, ingested.edges), (3, 3));
        assert_eq!(ingested.version, 0);
        // Unpinned re-ingest publishes latest-plus-one, pinned duplicates
        // are a typed 409.
        let again = client
            .ingest("tri", "# 4 3\n0 1\n1 2\n2 3\n", None)
            .unwrap();
        assert_eq!(again.version, 1);
        let err = client.ingest("tri", "# 2 1\n0 1\n", Some(1)).unwrap_err();
        assert!(
            matches!(&err, NetError::Api { status: 409, code, .. } if code == "version_exists"),
            "{err:?}"
        );

        let est = client.estimate("acme", "tri", 0.5, Some(1)).unwrap();
        assert_eq!(est.version, Some(1));

        let stats = client.stats().unwrap();
        assert_eq!(
            stats
                .get("catalog")
                .and_then(|c| c.get("graphs"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            stats
                .get("serve")
                .and_then(|s| s.get("completed"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
        net.shutdown();
    }

    #[test]
    fn typed_refusals_cross_the_wire_with_their_status() {
        let net = start_fleet();
        let mut client = NetClient::connect(net.local_addr());
        // Unknown tenant → 404 from the worker pool.
        let err = client.estimate("ghost", "stars", 0.5, None).unwrap_err();
        assert!(
            matches!(&err, NetError::Api { status: 404, code, .. } if code == "unknown_tenant")
        );
        // Budget exhaustion → 403, and the refused spend changed nothing.
        let err = client.estimate("acme", "stars", 1e9, None).unwrap_err();
        assert!(
            matches!(&err, NetError::Api { status: 403, code, .. } if code == "budget_exhausted")
        );
        // Invalid epsilon → 400 at submission.
        let err = client.estimate("acme", "stars", -1.0, None).unwrap_err();
        assert!(
            matches!(&err, NetError::Api { status: 400, code, .. } if code == "invalid_epsilon")
        );
        // Unknown route → 404 with its own code.
        let err = client.get_json("/nope").unwrap_err();
        assert!(matches!(&err, NetError::Api { status: 404, code, .. } if code == "unknown_route"));
        // Wrong method → 405.
        let err = client.get_json("/estimate").unwrap_err();
        assert!(
            matches!(&err, NetError::Api { status: 405, code, .. } if code == "method_not_allowed")
        );
        let stats = net.shutdown();
        assert_eq!(stats.responses_ok, 0);
        assert!(stats.responses_client_error >= 5);
    }

    #[test]
    fn audit_journal_and_slo_surfaces_round_trip() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("stars", generators::planted_star_forest(10, 2, 3));
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 2.5).unwrap();
        let serve = Arc::new(Server::start(
            ServeConfig::new().with_workers(2).with_seed(7),
            registry,
            ledger,
        ));
        // A generous hourly horizon: any spend at all breaches burn 0.001,
        // so the alert fires deterministically on the first /slo scrape.
        serve.slo().add_spec(ccdp_obs::SloSpec::new(
            "budget-burn",
            ccdp_obs::SloObjective::BurnRate {
                horizon_micros: 3_600_000_000,
                max_burn: 0.001,
            },
            10_000_000,
        ));
        let net = NetServer::start(NetConfig::new(), Arc::clone(&serve)).unwrap();
        let mut client = NetClient::connect(net.local_addr());
        client.estimate("acme", "stars", 2.0, None).unwrap();
        let err = client.estimate("acme", "stars", 1.0, None).unwrap_err();
        assert!(matches!(&err, NetError::Api { status: 403, .. }));

        let audit = client.audit("acme").unwrap();
        let account = audit.get("account").unwrap();
        assert_eq!(account.get("charges").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(account.get("refusals").and_then(JsonValue::as_u64), Some(1));
        let replay = audit.get("replay").unwrap();
        assert_eq!(
            replay.get("matches").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            replay.get("spent_epsilon").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        let events = match audit.get("events") {
            Some(JsonValue::Array(events)) => events,
            other => panic!("events must be an array, got {other:?}"),
        };
        let kind = |e: &JsonValue| {
            e.get("kind")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
        };
        assert!(events
            .iter()
            .any(|e| kind(e).as_deref() == Some("budget_charge")));
        assert!(events
            .iter()
            .any(|e| kind(e).as_deref() == Some("budget_refusal")));

        // The scrape evaluates: the burn breach fires and is visible both
        // in the /slo alert history and as an slo_alert audit event.
        let slo = client.slo().unwrap();
        let alerts = match slo.get("alerts") {
            Some(JsonValue::Array(alerts)) => alerts.clone(),
            other => panic!("alerts must be an array, got {other:?}"),
        };
        assert!(
            alerts.iter().any(|a| {
                a.get("spec").and_then(JsonValue::as_str) == Some("budget-burn")
                    && a.get("tenant").and_then(JsonValue::as_str) == Some("acme")
            }),
            "burn-rate alert must fire on the scrape: {alerts:?}"
        );
        let audit = client.audit("acme").unwrap();
        let events = match audit.get("events") {
            Some(JsonValue::Array(events)) => events.clone(),
            other => panic!("events must be an array, got {other:?}"),
        };
        assert!(events
            .iter()
            .any(|e| kind(e).as_deref() == Some("slo_alert")));

        // Unknown tenants are a typed 404; wrong methods a typed 405.
        let err = client.audit("ghost").unwrap_err();
        assert!(
            matches!(&err, NetError::Api { status: 404, code, .. } if code == "unknown_tenant")
        );
        let err = client.post_json("/slo", "{}").unwrap_err();
        assert!(matches!(&err, NetError::Api { status: 405, .. }));
        let err = client.post_json("/audit/acme", "{}").unwrap_err();
        assert!(matches!(&err, NetError::Api { status: 405, .. }));

        // The exposition satellite: versioned content type, drop counters,
        // per-tenant spend series, `# EOF` terminator.
        let metrics = client.metrics().unwrap();
        assert!(metrics.contains("ccdp_obs_trace_dropped_total"));
        assert!(metrics.contains("ccdp_obs_audit_dropped_total"));
        assert!(metrics.contains("ccdp_serve_budget_spent_total{tenant=\"acme\"}"));
        assert!(metrics.ends_with("# EOF\n"));
        net.shutdown();
    }

    #[test]
    fn malformed_wire_input_is_answered_typed() {
        use std::io::Write as _;
        let net = start_fleet();
        for (raw, want) in [
            // Unframed garbage: answered and closed.
            (&b"GARBAGE\r\n\r\n"[..], 400),
            // Well-framed request, bad JSON body: answered, framing intact.
            (
                b"POST /estimate HTTP/1.1\r\nContent-Length: 3\r\n\r\n{ni",
                400,
            ),
            (b"GET / HTTP/5.0\r\n\r\n", 505),
        ] {
            let mut s = TcpStream::connect(net.local_addr()).unwrap();
            s.write_all(raw).unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let reply = http::read_response(&mut reader, &WireLimits::default()).unwrap();
            assert_eq!(reply.status, want, "{raw:?}");
            assert!(reply.body_str().unwrap().contains("\"error\""), "{raw:?}");
        }
        net.shutdown();
    }

    #[test]
    fn connection_cap_is_a_typed_refusal() {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("path", generators::path(8));
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("acme", 10.0).unwrap();
        let server = Arc::new(Server::start(ServeConfig::new(), registry, ledger));
        let net = NetServer::start(NetConfig::new().with_max_connections(1), server).unwrap();
        // Hold one connection open (it counts against the cap once served).
        let mut first = NetClient::connect(net.local_addr());
        first.health().unwrap();
        // A second concurrent connection must be refused, not queued.
        let mut refused = None;
        for _ in 0..50 {
            let mut probe = NetClient::connect(net.local_addr());
            match probe.health() {
                Err(NetError::Api {
                    status: 503, code, ..
                }) if code == "connection_cap" => {
                    refused = Some(code);
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        assert!(
            refused.is_some(),
            "cap of 1 never refused a second connection"
        );
        let stats = net.shutdown();
        assert!(stats.refused_cap >= 1);
    }

    #[test]
    fn shutdown_drains_and_refuses_new_connections() {
        let net = start_fleet();
        let addr = net.local_addr();
        let stats = net.shutdown();
        // The shutdown wake is a real connection and gets the same typed
        // `503 draining` any client racing the drain would see.
        assert_eq!(stats.refused_draining, 1);
        // The port is released: a fresh bind either fails to connect or the
        // old listener is gone. Either way no new server answers.
        assert!(NetClient::connect(addr).health().is_err());
    }
}
