//! The typed failure surface of the wire tier.
//!
//! Every way a byte stream can be wrong — a garbled request line, an
//! oversized header block, a truncated body, malformed JSON — is a
//! [`NetError`] variant, and every variant maps to exactly one HTTP status
//! and one stable machine-readable error code (see [`NetError::http_status`]
//! and [`NetError::code`]; the [`ServeError`] mapping lives in
//! [`serve_error_status`]). Malformed input is *always* a typed refusal the
//! peer can read, never a panic and never a silently dropped connection.

use ccdp_serve::json::JsonParseError;
use ccdp_serve::ServeError;

/// Errors surfaced by the wire tier (listener, parser and client).
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine {
        /// What was wrong with it.
        detail: String,
    },
    /// The request line names an HTTP version this listener does not speak.
    UnsupportedVersion {
        /// The offending version token.
        version: String,
    },
    /// The method is well-formed but not one this route accepts.
    MethodNotAllowed {
        /// The offending method.
        method: String,
        /// The route it was aimed at.
        path: String,
    },
    /// A header line is not `Name: value`.
    BadHeader {
        /// What was wrong with it.
        detail: String,
    },
    /// The request line or header block exceeded the listener's byte limit.
    HeadersTooLarge {
        /// The limit in bytes.
        limit: usize,
    },
    /// More header lines than the listener accepts.
    TooManyHeaders {
        /// The limit.
        limit: usize,
    },
    /// `Content-Length` is missing where required, repeated with conflicting
    /// values, or not a base-10 integer.
    BadContentLength {
        /// What was wrong with it.
        detail: String,
    },
    /// The declared body exceeds the listener's cap.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The cap.
        limit: usize,
    },
    /// The connection ended (or stalled past the read timeout) before the
    /// declared body arrived.
    TruncatedBody {
        /// Bytes the `Content-Length` promised.
        expected: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The connection stalled mid-request (after the first byte) past the
    /// read timeout.
    TruncatedRequest,
    /// The body is not valid UTF-8.
    BodyNotUtf8,
    /// The body is not valid JSON.
    BadJson(JsonParseError),
    /// The JSON body is missing a required field.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// A JSON field has the wrong type or an invalid value.
    BadField {
        /// The field name.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// No route matches the request path.
    UnknownRoute {
        /// The offending path.
        path: String,
    },
    /// `GET /trace/{id}` named a trace the span ring no longer (or never)
    /// holds — ids expire as the bounded ring wraps.
    UnknownTrace {
        /// The requested id, as received.
        id: String,
    },
    /// The listener is at its connection cap; retry later.
    ConnectionCap {
        /// The cap.
        limit: usize,
    },
    /// The listener is draining for shutdown and refuses new work.
    Draining,
    /// The serving tier refused the request (typed pass-through; see
    /// [`serve_error_status`] for the HTTP mapping).
    Serve(ServeError),
    /// An I/O failure (client-side connect/read/write, or a listener socket
    /// error). Held as a string so the error stays `Clone + PartialEq`.
    Io {
        /// The underlying error, stringified.
        detail: String,
    },
    /// The client received bytes that do not parse as an HTTP/1.1 response.
    Protocol {
        /// What was wrong with them.
        detail: String,
    },
    /// The client received a well-formed error response from the server:
    /// the decoded `{"error": {...}}` body.
    Api {
        /// The HTTP status.
        status: u16,
        /// The stable machine-readable code (e.g. `budget_exhausted`).
        code: String,
        /// The human-readable message.
        message: String,
        /// The request's trace id, when the server attached one to the
        /// refusal (refused requests are traced too).
        trace: Option<String>,
    },
}

impl NetError {
    /// The HTTP status this refusal is served with.
    pub fn http_status(&self) -> u16 {
        match self {
            NetError::BadRequestLine { .. }
            | NetError::BadHeader { .. }
            | NetError::BadContentLength { .. }
            | NetError::TruncatedBody { .. }
            | NetError::TruncatedRequest
            | NetError::BodyNotUtf8
            | NetError::BadJson(_)
            | NetError::MissingField { .. }
            | NetError::BadField { .. } => 400,
            NetError::UnknownRoute { .. } | NetError::UnknownTrace { .. } => 404,
            NetError::MethodNotAllowed { .. } => 405,
            NetError::BodyTooLarge { .. } => 413,
            NetError::HeadersTooLarge { .. } | NetError::TooManyHeaders { .. } => 431,
            NetError::UnsupportedVersion { .. } => 505,
            NetError::ConnectionCap { .. } | NetError::Draining => 503,
            NetError::Serve(e) => serve_error_status(e).0,
            NetError::Io { .. } | NetError::Protocol { .. } => 502,
            NetError::Api { status, .. } => *status,
        }
    }

    /// The stable machine-readable code of this refusal (the `error.code`
    /// field of the JSON error body; documented in the README mapping
    /// table).
    pub fn code(&self) -> &str {
        match self {
            NetError::BadRequestLine { .. } => "bad_request_line",
            NetError::UnsupportedVersion { .. } => "unsupported_version",
            NetError::MethodNotAllowed { .. } => "method_not_allowed",
            NetError::BadHeader { .. } => "bad_header",
            NetError::HeadersTooLarge { .. } => "headers_too_large",
            NetError::TooManyHeaders { .. } => "too_many_headers",
            NetError::BadContentLength { .. } => "bad_content_length",
            NetError::BodyTooLarge { .. } => "body_too_large",
            NetError::TruncatedBody { .. } => "truncated_body",
            NetError::TruncatedRequest => "truncated_request",
            NetError::BodyNotUtf8 => "body_not_utf8",
            NetError::BadJson(_) => "bad_json",
            NetError::MissingField { .. } => "missing_field",
            NetError::BadField { .. } => "bad_field",
            NetError::UnknownRoute { .. } => "unknown_route",
            NetError::UnknownTrace { .. } => "unknown_trace",
            NetError::ConnectionCap { .. } => "connection_cap",
            NetError::Draining => "draining",
            NetError::Serve(e) => serve_error_status(e).1,
            NetError::Io { .. } => "io",
            NetError::Protocol { .. } => "protocol",
            NetError::Api { code, .. } => code,
        }
    }
}

/// The HTTP status and stable code every [`ServeError`] maps to on the wire.
///
/// Backpressure is retryable and distinguishable: a full queue is `429 Too
/// Many Requests`, a draining server is `503 Service Unavailable`. An
/// exhausted privacy budget is `403 Forbidden` — the request was understood
/// and refused, and retrying cannot help until the quota changes.
pub fn serve_error_status(e: &ServeError) -> (u16, &'static str) {
    match e {
        ServeError::QueueFull { .. } => (429, "queue_full"),
        ServeError::ShuttingDown => (503, "shutting_down"),
        ServeError::UnknownGraph { .. } => (404, "unknown_graph"),
        ServeError::UnknownVersion { .. } => (404, "unknown_version"),
        ServeError::VersionExists { .. } => (409, "version_exists"),
        ServeError::VersionExpired { .. } => (409, "version_expired"),
        ServeError::UnknownTenant { .. } => (404, "unknown_tenant"),
        ServeError::BudgetExhausted { .. } => (403, "budget_exhausted"),
        ServeError::TenantAlreadyRegistered { .. } => (409, "tenant_exists"),
        ServeError::InvalidEpsilon { .. } => (400, "invalid_epsilon"),
        ServeError::Ingest(_) => (400, "ingest_failed"),
        ServeError::Estimator(_) => (500, "estimator_failed"),
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadRequestLine { detail } => write!(f, "bad request line: {detail}"),
            NetError::UnsupportedVersion { version } => {
                write!(f, "unsupported HTTP version `{version}`")
            }
            NetError::MethodNotAllowed { method, path } => {
                write!(f, "method {method} not allowed on {path}")
            }
            NetError::BadHeader { detail } => write!(f, "bad header: {detail}"),
            NetError::HeadersTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            NetError::TooManyHeaders { limit } => write!(f, "more than {limit} headers"),
            NetError::BadContentLength { detail } => write!(f, "bad Content-Length: {detail}"),
            NetError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds cap {limit}")
            }
            NetError::TruncatedBody { expected, got } => {
                write!(f, "body truncated: got {got} of {expected} bytes")
            }
            NetError::TruncatedRequest => write!(f, "connection stalled mid-request"),
            NetError::BodyNotUtf8 => write!(f, "body is not valid UTF-8"),
            NetError::BadJson(e) => write!(f, "{e}"),
            NetError::MissingField { field } => write!(f, "missing required field `{field}`"),
            NetError::BadField { field, detail } => write!(f, "field `{field}`: {detail}"),
            NetError::UnknownRoute { path } => write!(f, "no route for `{path}`"),
            NetError::UnknownTrace { id } => {
                write!(f, "no trace `{id}` (ids expire as the span ring wraps)")
            }
            NetError::ConnectionCap { limit } => {
                write!(f, "connection cap of {limit} reached; retry later")
            }
            NetError::Draining => write!(f, "listener is draining for shutdown"),
            NetError::Serve(e) => write!(f, "{e}"),
            NetError::Io { detail } => write!(f, "i/o failure: {detail}"),
            NetError::Protocol { detail } => write!(f, "malformed response: {detail}"),
            NetError::Api {
                status,
                code,
                message,
                ..
            } => write!(f, "server refused ({status} {code}): {message}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Serve(e) => Some(e),
            NetError::BadJson(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for NetError {
    fn from(e: ServeError) -> Self {
        NetError::Serve(e)
    }
}

impl From<JsonParseError> for NetError {
    fn from(e: JsonParseError) -> Self {
        NetError::BadJson(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdp_serve::GraphId;

    #[test]
    fn every_parse_refusal_is_a_4xx_or_5xx_with_a_stable_code() {
        let cases: Vec<(NetError, u16, &str)> = vec![
            (
                NetError::BadRequestLine { detail: "x".into() },
                400,
                "bad_request_line",
            ),
            (
                NetError::BodyTooLarge {
                    declared: 9,
                    limit: 4,
                },
                413,
                "body_too_large",
            ),
            (
                NetError::HeadersTooLarge { limit: 16384 },
                431,
                "headers_too_large",
            ),
            (
                NetError::UnknownRoute { path: "/x".into() },
                404,
                "unknown_route",
            ),
            (NetError::ConnectionCap { limit: 4 }, 503, "connection_cap"),
            (NetError::Draining, 503, "draining"),
            (
                NetError::UnsupportedVersion {
                    version: "HTTP/0.9".into(),
                },
                505,
                "unsupported_version",
            ),
        ];
        for (e, status, code) in cases {
            assert_eq!(e.http_status(), status, "{e}");
            assert_eq!(e.code(), code, "{e}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn serve_errors_keep_their_documented_wire_mapping() {
        let e = NetError::from(ServeError::QueueFull { capacity: 8 });
        assert_eq!((e.http_status(), e.code()), (429, "queue_full"));
        let e = NetError::from(ServeError::UnknownGraph {
            graph: GraphId::new("g"),
        });
        assert_eq!((e.http_status(), e.code()), (404, "unknown_graph"));
        assert_eq!(
            serve_error_status(&ServeError::ShuttingDown),
            (503, "shutting_down")
        );
    }
}
