//! Property: the wire parser is *total*. Whatever bytes arrive — random
//! garbage, truncated prefixes of valid requests, oversized frames — the
//! parser answers with `Ok(ReadOutcome)` or a typed [`NetError`] whose HTTP
//! status is a real refusal code. It never panics, and a live listener fed
//! the same garbage stays healthy for the next well-formed client.

use ccdp_net::http::{self, ReadOutcome};
use ccdp_net::{NetClient, NetConfig, NetServer, WireLimits};
use ccdp_serve::{BudgetLedger, GraphRegistry, ServeConfig, Server};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{BufReader, Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A complete, valid request serialized to bytes (the happy frame the
/// truncation property carves prefixes from).
fn valid_frame(target: &str, body: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    http::write_request(&mut buf, "POST", target, Some(body)).unwrap();
    buf
}

/// Parses one frame in memory and translates the result into the property
/// surface: either an outcome or a typed error with its wire status.
fn parse(bytes: &[u8], limits: &WireLimits) -> Result<ReadOutcome, (u16, String)> {
    let mut reader = BufReader::new(Cursor::new(bytes));
    http::read_request(&mut reader, limits).map_err(|e| (e.http_status(), e.code().to_string()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes: never a panic, and every refusal is a 4xx/5xx with
    /// a stable machine code.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..512)) {
        match parse(&bytes, &WireLimits::default()) {
            Ok(_) => {}
            Err((status, code)) => {
                prop_assert!((400..=599).contains(&status), "status {status}");
                prop_assert!(!code.is_empty());
            }
        }
    }

    /// Every strict prefix of a valid request is a clean close (empty), or
    /// a typed truncation/parse refusal — never a successfully parsed
    /// request, and never a panic.
    #[test]
    fn truncated_requests_are_typed_refusals(
        body_len in 0usize..96,
        cut in 0usize..400,
    ) {
        let body: String = "x".repeat(body_len);
        let frame = valid_frame("/estimate", &body);
        let cut = cut.min(frame.len());
        match parse(&frame[..cut], &WireLimits::default()) {
            Ok(ReadOutcome::Request(req)) => {
                // Only the complete frame parses as a request.
                prop_assert_eq!(cut, frame.len());
                prop_assert_eq!(req.body.len(), body_len);
            }
            Ok(ReadOutcome::Closed) => prop_assert_eq!(cut, 0),
            Ok(ReadOutcome::Idle) => prop_assert!(false, "in-memory reads cannot idle"),
            Err((status, _)) => {
                prop_assert!(cut < frame.len(), "complete frame refused ({status})");
                prop_assert!((400..=599).contains(&status));
            }
        }
    }

    /// Any complete frame that overruns the configured body cap is exactly
    /// `413 body_too_large`, and frames within the cap round-trip intact.
    #[test]
    fn body_cap_is_enforced_exactly(body_len in 0usize..256) {
        let limits = WireLimits { max_body_bytes: 128, ..WireLimits::default() };
        let body: String = "y".repeat(body_len);
        match parse(&valid_frame("/ingest", &body), &limits) {
            Ok(ReadOutcome::Request(req)) => {
                prop_assert!(body_len <= 128);
                prop_assert_eq!(req.body_str().unwrap(), body.as_str());
            }
            Err((status, code)) => {
                prop_assert!(body_len > 128, "in-cap body refused ({code})");
                prop_assert_eq!(status, 413);
                prop_assert_eq!(code.as_str(), "body_too_large");
            }
            Ok(other) => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }
}

/// One listener shared across all live-socket cases (a server per proptest
/// case would dominate the run). `OnceLock` keeps it for the process.
fn shared_server() -> &'static NetServer {
    static SERVER: OnceLock<NetServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let registry = Arc::new(GraphRegistry::new());
        registry.insert("probe", ccdp_graph::generators::path(8));
        let ledger = Arc::new(BudgetLedger::new());
        ledger.register("prop", 1.0e6).unwrap();
        let server = Arc::new(Server::start(
            ServeConfig::new().with_workers(2).with_seed(23),
            registry,
            ledger,
        ));
        NetServer::start(NetConfig::new().with_max_connections(64), server).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Garbage over a real socket: the listener answers with a typed error
    /// response (or just closes an empty connection), never wedges — the
    /// next well-formed client on a fresh connection is served normally.
    #[test]
    fn live_listener_survives_garbage(bytes in vec(any::<u8>(), 0..256)) {
        let net = shared_server();
        let mut stream = TcpStream::connect(net.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream.write_all(&bytes).unwrap();
        // Half-close so the listener sees EOF instead of waiting out its
        // idle timeout on frames that happen to be valid prefixes.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut answer = String::new();
        stream.read_to_string(&mut answer).unwrap();
        if !bytes.is_empty() {
            // Anything beyond a clean EOF earns a typed HTTP refusal. A
            // random blob is never a complete valid request (it would need
            // "METHOD /target HTTP/1.1" plus exact framing), so the answer
            // here is always an error status with a JSON error body.
            prop_assert!(answer.starts_with("HTTP/1.1 4") || answer.starts_with("HTTP/1.1 5"),
                "unexpected answer {answer:?}");
            prop_assert!(answer.contains("\"error\""));
        }
        drop(stream);

        let mut client = NetClient::connect(net.local_addr());
        let est = client.estimate("prop", "probe", 0.25, None);
        prop_assert!(est.is_ok(), "healthy client refused after garbage: {est:?}");
    }
}

/// The legitimate frames the fuzz cases above can never hit by chance:
/// a well-formed request with an unknown method is `405`, an unknown path
/// `404`, and both leave the connection reusable.
#[test]
fn well_formed_but_wrong_requests_keep_the_connection() {
    let net = shared_server();
    let mut stream = TcpStream::connect(net.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"DELETE /estimate HTTP/1.1\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let limits = WireLimits::default();
    let first = http::read_response(&mut reader, &limits).unwrap();
    assert_eq!(first.status, 405);

    // Same socket, next frame: the 405 kept framing intact.
    stream
        .write_all(b"GET /no-such-route HTTP/1.1\r\n\r\n")
        .unwrap();
    let second = http::read_response(&mut reader, &limits).unwrap();
    assert_eq!(second.status, 404);
    assert!(second.body_str().unwrap().contains("unknown_route"));
}

/// `NetError` statuses quoted in the README mapping table are locked here.
#[test]
fn readme_error_code_mapping_is_stable() {
    use ccdp_serve::{BudgetExceeded, ServeError};
    let cases: &[(ServeError, u16, &str)] = &[
        (ServeError::QueueFull { capacity: 1 }, 429, "queue_full"),
        (ServeError::ShuttingDown, 503, "shutting_down"),
        (
            ServeError::BudgetExhausted {
                tenant: "t".into(),
                exceeded: BudgetExceeded {
                    requested: 1.0,
                    remaining: 0.0,
                },
            },
            403,
            "budget_exhausted",
        ),
        (
            ServeError::UnknownGraph { graph: "g".into() },
            404,
            "unknown_graph",
        ),
        (
            ServeError::UnknownTenant { tenant: "t".into() },
            404,
            "unknown_tenant",
        ),
    ];
    for (err, status, code) in cases {
        let (s, c) = ccdp_net::serve_error_status(err);
        assert_eq!((s, c), (*status, *code), "{err:?}");
    }
}
