//! End-to-end observability over real sockets.
//!
//! The acceptance contract of the obs tier, exercised through the wire:
//! every `POST /estimate` on a tracing server answers with an
//! `X-Ccdp-Trace` id that `GET /trace/{id}` resolves to the full span tree
//! (queue admission, cache outcome, solver phases, budget decision,
//! release), refusals included; and `GET /metrics` exposes every island's
//! counters as one coherent Prometheus exposition.

use ccdp_net::{NetClient, NetConfig, NetError, NetServer};
use ccdp_obs::parse_exposition;
use ccdp_serve::json::JsonValue;
use ccdp_serve::{BudgetLedger, GraphRegistry, ServeConfig, Server};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A traced fleet: a cheap cached graph, a CSR-sized graph (work ≥ the
/// parallel threshold, so the solver runs its partition/anchor/lp phases),
/// a funded tenant and a nearly-broke one.
fn start_traced_fleet(seed: u64) -> NetServer {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert(
        "stars",
        ccdp_graph::generators::planted_star_forest(10, 2, 3),
    );
    registry.insert("big", ccdp_graph::generators::path(2500));
    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("acme", 1.0e6).unwrap();
    ledger.register("broke", 1e-6).unwrap();
    let server = Arc::new(Server::start(
        ServeConfig::new()
            .with_workers(2)
            .with_seed(seed)
            .with_tracing(true),
        registry,
        ledger,
    ));
    NetServer::start(NetConfig::new(), server).unwrap()
}

/// Every span name in a `/trace/{id}` JSON answer, depth-first.
fn span_names(tree: &JsonValue) -> Vec<String> {
    fn walk(spans: &JsonValue, out: &mut Vec<String>) {
        if let JsonValue::Array(items) = spans {
            for span in items {
                if let Some(name) = span.get("name").and_then(JsonValue::as_str) {
                    out.push(name.to_string());
                }
                if let Some(children) = span.get("children") {
                    walk(children, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    if let Some(spans) = tree.get("spans") {
        walk(spans, &mut out);
    }
    out
}

/// Max span duration in the tree (the "non-zero timings" check).
fn max_duration_nanos(tree: &JsonValue) -> u64 {
    fn walk(spans: &JsonValue, max: &mut u64) {
        if let JsonValue::Array(items) = spans {
            for span in items {
                if let Some(d) = span.get("duration_nanos").and_then(JsonValue::as_u64) {
                    *max = (*max).max(d);
                }
                if let Some(children) = span.get("children") {
                    walk(children, max);
                }
            }
        }
    }
    let mut max = 0;
    if let Some(spans) = tree.get("spans") {
        walk(spans, &mut max);
    }
    max
}

#[test]
fn estimate_trace_resolves_to_the_full_span_tree() {
    let net = start_traced_fleet(41);
    let mut client = NetClient::connect(net.local_addr());

    // A CSR-sized miss: the solver's own phases must appear in the tree.
    let est = client.estimate("acme", "big", 0.5, None).unwrap();
    let id = est.trace.expect("tracing server must attach a trace id");
    let tree = client.trace(&id).unwrap();
    assert_eq!(
        tree.get("trace").and_then(JsonValue::as_str),
        Some(id.as_str())
    );

    let names = span_names(&tree);
    for must in [
        "queued",
        "dequeued",
        "cache/miss",
        "budget/charge",
        "noise/draw",
        "release",
    ] {
        assert!(
            names.iter().any(|n| n == must),
            "missing `{must}`: {names:?}"
        );
    }
    // ≥ 3 solver phases: the CSR family pipeline plus the release stages.
    let phases: Vec<_> = names.iter().filter(|n| n.starts_with("phase/")).collect();
    assert!(phases.len() >= 3, "expected ≥3 phase spans, got {phases:?}");
    for must in [
        "phase/family/partition",
        "phase/family/anchor",
        "phase/family/lp",
        "phase/release/true-value",
        "phase/release/mechanisms",
    ] {
        assert!(
            names.iter().any(|n| n == must),
            "missing `{must}`: {names:?}"
        );
    }
    assert!(
        max_duration_nanos(&tree) > 0,
        "a 2500-vertex solve must have non-zero span timings"
    );
    assert!(
        tree.get("total_nanos").and_then(JsonValue::as_u64).unwrap() > 0,
        "trace wall clock must be non-zero"
    );

    // The same graph again: a cache hit, with its own fresh trace.
    let est2 = client.estimate("acme", "big", 0.5, None).unwrap();
    let id2 = est2.trace.unwrap();
    assert_ne!(id, id2, "every request mints its own trace id");
    let names2 = span_names(&client.trace(&id2).unwrap());
    assert!(
        names2
            .iter()
            .any(|n| n == "cache/hit" || n == "cache/coalesced"),
        "second request should hit the family cache: {names2:?}"
    );

    // An unknown id (after the real ones, so it cannot collide) is a typed 404.
    let err = client
        .trace("00000000000000000000000000000000")
        .unwrap_err();
    assert!(
        matches!(&err, NetError::Api { status: 404, code, .. } if code == "unknown_trace"),
        "{err:?}"
    );
    net.shutdown();
}

#[test]
fn budget_refusals_are_traced_end_to_end() {
    let net = start_traced_fleet(43);
    let mut client = NetClient::connect(net.local_addr());
    let err = client.estimate("broke", "stars", 1.0, None).unwrap_err();
    let NetError::Api {
        status: 403,
        code,
        trace: Some(id),
        ..
    } = &err
    else {
        panic!("expected a traced 403, got {err:?}");
    };
    assert_eq!(code, "budget_exhausted");
    let names = span_names(&client.trace(id).unwrap());
    for must in ["queued", "dequeued", "budget/refusal", "failed"] {
        assert!(
            names.iter().any(|n| n == must),
            "missing `{must}`: {names:?}"
        );
    }
    net.shutdown();
}

#[test]
fn queue_full_refusals_still_carry_a_trace() {
    // One worker, a one-slot queue, and the worker wedged on a big solve:
    // concurrent submissions overflow deterministically soon.
    let registry = Arc::new(GraphRegistry::new());
    registry.insert("big", ccdp_graph::generators::path(6000));
    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("acme", 1.0e6).unwrap();
    let server = Arc::new(Server::start(
        ServeConfig::new()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_seed(5)
            .with_tracing(true),
        registry,
        ledger,
    ));
    let net = NetServer::start(NetConfig::new(), server).unwrap();
    let addr = net.local_addr();

    // Saturate: each estimate blocks its own connection, so drive them from
    // threads until one bounces off the full queue.
    let mut handles = Vec::new();
    for _ in 0..6 {
        handles.push(std::thread::spawn(move || {
            NetClient::connect(addr).estimate("acme", "big", 0.25, None)
        }));
    }
    let mut refused_trace = None;
    for handle in handles {
        if let Err(NetError::Api {
            status: 429, trace, ..
        }) = handle.join().unwrap()
        {
            refused_trace = trace;
        }
    }
    let id = refused_trace.expect("six clients against a 1-slot queue must see a 429 with a trace");
    let names = span_names(&NetClient::connect(addr).trace(&id).unwrap());
    assert!(
        names.iter().any(|n| n == "queue/refused"),
        "a queue-full trace records its refusal: {names:?}"
    );
    net.shutdown();
}

#[test]
fn metrics_exposition_covers_every_island() {
    let net = start_traced_fleet(47);
    let mut client = NetClient::connect(net.local_addr());
    client.estimate("acme", "big", 0.5, None).unwrap();
    client.estimate("acme", "big", 0.5, None).unwrap();
    client.estimate("acme", "stars", 0.5, None).unwrap();
    let _ = client.estimate("broke", "stars", 1.0, None);

    let text = client.metrics().unwrap();
    let series = parse_exposition(&text);
    let names: BTreeSet<&str> = series.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        names.len() >= 20,
        "expected ≥20 named series, got {}: {names:?}",
        names.len()
    );
    for island in [
        "ccdp_net_",
        "ccdp_serve_",
        "ccdp_core_cache_",
        "ccdp_dp_budget_",
        "ccdp_exec_phase_",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(island)),
            "no `{island}*` series in the exposition: {names:?}"
        );
    }

    // Cross-island consistency: the wire island counted what /stats counts.
    let value = |name: &str| {
        series
            .iter()
            .filter(|(n, _)| n == name || n.starts_with(&format!("{name}{{")))
            .map(|(_, v)| v)
            .sum::<f64>()
    };
    assert_eq!(value("ccdp_serve_requests_total"), 4.0);
    assert_eq!(value("ccdp_serve_completed_total"), 3.0);
    assert_eq!(value("ccdp_dp_budget_charges_total"), 3.0);
    assert_eq!(value("ccdp_dp_budget_refusals_total"), 1.0);
    assert!(value("ccdp_core_cache_misses_total") >= 2.0);
    assert!(value("ccdp_core_cache_hits_total") + value("ccdp_core_cache_coalesced_total") >= 1.0);
    net.shutdown();
}

/// One request's expected wire outcome in the random schedule.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `acme` on `stars`: succeeds (miss on first touch, hit after).
    Served,
    /// `broke` on `stars`: a traced `403 budget_exhausted`.
    Refused,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of served and refused requests: every answer
    /// carries a trace id, and every id resolves to a tree whose skeleton
    /// matches the outcome the client observed.
    #[test]
    fn every_wire_answer_resolves_to_its_skeleton(
        ops in vec(any::<bool>(), 1..8),
        seed in 0u64..1000,
    ) {
        let net = start_traced_fleet(1000 + seed);
        let mut client = NetClient::connect(net.local_addr());
        for served in ops {
            let op = if served { Op::Served } else { Op::Refused };
            let (id, expected) = match op {
                Op::Served => {
                    let est = client.estimate("acme", "stars", 0.25, None).unwrap();
                    (est.trace.unwrap(), vec!["queued", "dequeued", "budget/charge", "release"])
                }
                Op::Refused => {
                    let err = client.estimate("broke", "stars", 1.0, None).unwrap_err();
                    let NetError::Api { status: 403, trace: Some(id), .. } = err else {
                        panic!("expected a traced 403, got another outcome");
                    };
                    (id, vec!["queued", "dequeued", "budget/refusal", "failed"])
                }
            };
            let names = span_names(&client.trace(&id).unwrap());
            for must in expected {
                prop_assert!(names.iter().any(|n| n == must), "missing `{must}`: {names:?}");
            }
            if matches!(op, Op::Served) {
                prop_assert!(
                    names.iter().any(|n| n.starts_with("cache/")),
                    "a served request records its cache outcome: {names:?}"
                );
            }
        }
        net.shutdown();
    }
}
