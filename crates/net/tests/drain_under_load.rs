//! Shutdown is a drain, not a guillotine. This test tears the listener down
//! in the middle of live traffic and checks the contract end to end:
//!
//! * every request a client saw succeed was really counted by the server —
//!   nothing in flight is silently dropped;
//! * every request refused during the drain failed *typed* (`503` over the
//!   wire or a connection-level `NetError`), never a hang or a panic;
//! * once `shutdown` returns, the port no longer answers.

use ccdp_net::{NetClient, NetConfig, NetError, NetServer};
use ccdp_serve::{BudgetLedger, GraphRegistry, ServeConfig, Server};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn shutdown_mid_load_drops_nothing_in_flight() {
    let registry = Arc::new(GraphRegistry::new());
    registry.insert(
        "work",
        ccdp_graph::generators::planted_star_forest(16, 3, 8),
    );
    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("drain", 1.0e9).unwrap();
    let server = Arc::new(Server::start(
        ServeConfig::new().with_workers(3).with_seed(41),
        registry,
        ledger,
    ));
    let net = NetServer::start(
        NetConfig::new().with_max_connections(32),
        Arc::clone(&server),
    )
    .unwrap();
    let addr = net.local_addr();

    // Eight clients hammer /estimate until the drain cuts them off. Each
    // thread reports (successes, first failure if any).
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = NetClient::connect(addr).with_timeout(Duration::from_secs(10));
                let mut ok = 0u64;
                let mut refusal: Option<NetError> = None;
                while !stop.load(Ordering::Relaxed) {
                    match client.estimate("drain", "work", 0.05, None) {
                        Ok(est) => {
                            assert!(est.value.is_finite());
                            ok += 1;
                        }
                        Err(e) => {
                            refusal = Some(e);
                            break;
                        }
                    }
                }
                (ok, refusal)
            })
        })
        .collect();

    // Let traffic build, then drain while requests are in flight.
    thread::sleep(Duration::from_millis(300));
    let stats = net.shutdown();
    stop.store(true, Ordering::Relaxed);

    let mut client_ok = 0u64;
    let mut refusals = 0u64;
    for w in workers {
        let (ok, refusal) = w.join().expect("client thread must not panic");
        client_ok += ok;
        if let Some(err) = refusal {
            refusals += 1;
            // Typed refusal: either the drain's 503 answer or a
            // connection-level error once the socket is gone — never an
            // Api error with a success status, never a parse wreck.
            match &err {
                NetError::Api { status, .. } => {
                    assert_eq!(*status, 503, "drain refusal was {err:?}")
                }
                NetError::Io { .. } | NetError::Protocol { .. } => {}
                other => panic!("untyped drain failure: {other:?}"),
            }
        }
    }

    // The drain really drained: the server answered every request a client
    // counted as a success (the listener's OK counter can only exceed the
    // clients' count by responses cut off on the wire, never undercount).
    assert!(client_ok > 0, "no traffic made it before the drain");
    // Every client that was still in its loop at shutdown hit the cutoff.
    assert!(refusals > 0, "the drain never refused a live client");
    assert!(
        stats.responses_ok >= client_ok,
        "clients saw {client_ok} successes but the server only answered {}",
        stats.responses_ok
    );
    // And the pool behind it agrees end-to-end: completions cover every
    // wire-level success.
    let pool = server.stats();
    assert!(
        pool.completed >= client_ok,
        "worker pool completed {} < client successes {client_ok}",
        pool.completed
    );

    // The port is dead after shutdown returns.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still answering after shutdown"
    );
}
