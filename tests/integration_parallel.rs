//! End-to-end determinism of the parallel execution path: a private release
//! produced with any thread budget must be bit-for-bit identical to the
//! sequential one on the same seed. This is the contract that makes
//! `with_threads` a pure scheduling knob — privacy analysis, reproducibility
//! of experiments and the family cache all rely on it.

use ccdp::prelude::*;

/// A barely-supercritical ER graph big enough to cross the parallel work
/// threshold (n + m >= 4096), so the threaded path genuinely fans out.
fn supercritical_er(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::erdos_renyi(n, 1.05 / n as f64, &mut rng)
}

fn release_bits(g: &Graph, threads: usize, seed: u64) -> (u64, Option<usize>) {
    let cfg = EstimatorConfig::new(1.0)
        .with_threads(threads)
        .with_delta_max(64);
    let est = PrivateCcEstimator::from_config(cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let r = est.estimate(g, &mut rng).unwrap();
    let delta = r
        .diagnostics(DiagnosticsAccess::acknowledge_non_private())
        .selected_delta;
    (r.value().to_bits(), delta)
}

#[test]
fn private_release_is_identical_for_every_thread_budget() {
    let g = supercritical_er(6_000, 7);
    assert!(
        g.num_vertices() + g.num_edges() >= 4096,
        "instance must cross the parallel work threshold"
    );
    for seed in [1u64, 99, 4242] {
        let baseline = release_bits(&g, 1, seed);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                baseline,
                release_bits(&g, threads, seed),
                "threads={threads} seed={seed}"
            );
        }
    }
}

#[test]
fn spanning_forest_release_is_identical_for_every_thread_budget() {
    let g = supercritical_er(5_000, 31);
    let mk = |threads: usize| {
        let cfg = EstimatorConfig::new(0.5)
            .with_threads(threads)
            .with_delta_max(32);
        let est = PrivateSpanningForestEstimator::from_config(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(271_828);
        est.estimate(&g, &mut rng).unwrap().value().to_bits()
    };
    let baseline = mk(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(baseline, mk(threads), "threads={threads}");
    }
}

#[test]
fn default_thread_budget_matches_explicit_sequential() {
    // The default (machine parallelism, whatever this host has) must release
    // the same bits as an explicit `with_threads(1)`.
    let g = supercritical_er(4_500, 13);
    let bits = |cfg: EstimatorConfig| {
        let est = PrivateCcEstimator::from_config(cfg.with_delta_max(32)).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        est.estimate(&g, &mut rng).unwrap().value().to_bits()
    };
    assert_eq!(
        bits(EstimatorConfig::new(1.0)),
        bits(EstimatorConfig::new(1.0).with_threads(1))
    );
}
