//! End-to-end serving-tier integration through the `ccdp` facade: catalog
//! ingestion, multi-tenant metering, coalesced family evaluations and the
//! deterministic load generator, all via `ccdp::prelude`.

use ccdp::prelude::*;
use ccdp::serve::{GraphSpec, TenantSpec};
use std::sync::Arc;

#[test]
fn facade_serves_a_multi_tenant_fleet() {
    let registry = Arc::new(GraphRegistry::new());
    // Ingest one graph from the wire format, build one programmatically.
    registry
        .ingest_edge_list("wire", &io::to_edge_list(&generators::caveman(3, 4)))
        .unwrap();
    registry.insert("gen", generators::planted_star_forest(8, 2, 2));
    assert_eq!(registry.len(), 2);

    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("teamA", 5.0).unwrap();
    ledger.register("teamB", 0.4).unwrap();

    let server = Server::start(
        ServeConfig::new().with_workers(3).with_seed(17),
        Arc::clone(&registry),
        Arc::clone(&ledger),
    );

    // teamA: several releases across both graphs.
    let pending: Vec<_> = (0..6)
        .map(|i| {
            let graph = if i % 2 == 0 { "wire" } else { "gen" };
            server
                .submit(ServeRequest::new("teamA", graph, 0.5))
                .unwrap()
        })
        .collect();
    for p in pending {
        let response = p.wait();
        let release = response.result.expect("teamA is funded");
        assert!(release.value().is_finite());
    }

    // teamB: first release fits the quota, the second is a typed refusal.
    let ok = server
        .submit(ServeRequest::new("teamB", "gen", 0.3))
        .unwrap()
        .wait();
    assert!(ok.result.is_ok());
    let refused = server
        .submit(ServeRequest::new("teamB", "gen", 0.3))
        .unwrap()
        .wait();
    assert!(matches!(
        refused.result,
        Err(ServeError::BudgetExhausted { .. })
    ));

    // The shared cache did one evaluation per unique graph.
    let cache = server.cache_stats();
    assert_eq!(cache.misses, 2, "{cache:?}");

    let snap = server.shutdown();
    assert_eq!(snap.completed, 7);
    assert_eq!(snap.budget_refusals, 1);

    // The ledger survives the server: accounts are inspectable afterwards.
    let team_a = ledger.account_view(&TenantId::new("teamA")).unwrap();
    assert!((team_a.spent_epsilon - 3.0).abs() < 1e-9);
    assert_eq!(team_a.grants, 6);
}

#[test]
fn load_generator_meets_the_ci_acceptance_bar() {
    // A scaled-down cousin of the CI spec (fast under `cargo test -q`):
    // repeated-graph mix must be served mostly from cache and nothing may
    // fail outright.
    let spec = LoadSpec {
        graphs: vec![
            GraphSpec::ErdosRenyi {
                n: 40,
                avg_degree: 2.5,
                seed: 3,
            },
            GraphSpec::Star { leaves: 20 },
            GraphSpec::Path { n: 30 },
        ],
        tenants: vec![
            TenantSpec {
                name: "a".into(),
                quota_epsilon: 50.0,
                weight: 2.0,
            },
            TenantSpec {
                name: "b".into(),
                quota_epsilon: 50.0,
                weight: 1.0,
            },
        ],
        clients: 16,
        requests: 96,
        epsilon_per_request: 0.2,
        seed: 42,
        server: ServeConfig::new().with_workers(4).with_queue_capacity(64),
    };
    let report = spec.run();
    assert!(report.is_complete(), "{report:?}");
    assert_eq!(report.completed, 96);
    assert_eq!(report.failed, 0);
    assert!(
        report.cache_hit_rate() > 0.5,
        "hit rate {:.2} below the acceptance bar",
        report.cache_hit_rate()
    );
    assert_eq!(report.cache.misses, 3, "one evaluation per fleet graph");
    // The JSON artifact carries the fields the CI job archives.
    let json = report.to_json();
    for field in [
        "throughput_rps",
        "p99_latency_ms",
        "cache_hit_rate",
        "budget_refusals",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
}

#[test]
fn seeded_load_runs_are_reproducible_in_their_accounting() {
    let spec = LoadSpec {
        graphs: vec![GraphSpec::Path { n: 16 }],
        tenants: vec![TenantSpec {
            name: "t".into(),
            quota_epsilon: 3.0,
            weight: 1.0,
        }],
        clients: 8,
        requests: 24,
        epsilon_per_request: 0.25,
        seed: 7,
        server: ServeConfig::new().with_workers(4).with_queue_capacity(16),
    };
    let (a, b) = (spec.run(), spec.run());
    // Wall-clock and latency vary run to run; the *accounting* may not:
    // same grants, same refusals, same cache miss count.
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.budget_refusals, b.budget_refusals);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.cache.misses, b.cache.misses);
    assert_eq!(a.completed, 12, "3.0 ε funds exactly 12 spends of 0.25");
    assert_eq!(a.budget_refusals, 12);
}
