//! Tests for the unified estimator API: object safety of `dyn Estimator`
//! across private estimators and all four baselines, typed (panic-free)
//! configuration errors, the gated `Release` surface, and privacy-budget
//! accounting — all through the `ccdp` facade prelude.

use ccdp::prelude::*;
use proptest::prelude::*;

fn fleet(epsilon: f64) -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(PrivateCcEstimator::from_config(EstimatorConfig::new(epsilon)).unwrap()),
        Box::new(PrivateSpanningForestEstimator::new(epsilon).unwrap()),
        Box::new(NonPrivateBaseline),
        Box::new(EdgeDpBaseline::new(epsilon).unwrap()),
        Box::new(NaiveNodeDpBaseline::new(epsilon).unwrap()),
        Box::new(FixedDeltaBaseline::new(epsilon, 2).unwrap()),
    ]
}

#[test]
fn heterogeneous_estimators_serve_through_one_trait_object() {
    let g = generators::planted_star_forest(40, 2, 10);
    let mut rng = StdRng::seed_from_u64(42);
    let estimators = fleet(1.0);

    let names: std::collections::HashSet<&str> = estimators.iter().map(|e| e.name()).collect();
    assert_eq!(
        names.len(),
        estimators.len(),
        "estimator names must be distinct"
    );

    for est in &estimators {
        let release = est.estimate(&g, &mut rng).unwrap();
        assert!(
            release.value().is_finite(),
            "{} released a non-finite value",
            est.name()
        );
        assert_eq!(release.estimator(), est.name());
        assert_eq!(
            release.privacy(),
            est.privacy(),
            "{} must release under its advertised guarantee",
            est.name()
        );
    }
}

#[test]
fn release_default_surface_hides_diagnostics() {
    let g = generators::planted_star_forest(20, 2, 5);
    let mut rng = StdRng::seed_from_u64(7);
    let est = PrivateCcEstimator::new(1.0).unwrap();
    let release = est.estimate(&g, &mut rng).unwrap();

    // Logging a release must never print non-private intermediate values.
    let printed = format!("{release} / {release:?}");
    assert!(printed.contains("private-connected-components"));
    assert!(printed.contains("gated"));
    assert!(!printed.contains("family_values: [("), "{printed}");

    // The diagnostics are reachable only through the explicit token.
    let diagnostics = release.diagnostics(DiagnosticsAccess::acknowledge_non_private());
    assert!(diagnostics.selected_delta.is_some());
    assert!(!diagnostics.family_values.is_empty());
}

#[test]
fn private_and_baseline_estimators_advertise_correct_privacy() {
    let estimators = fleet(0.5);
    let epsilons: Vec<Option<f64>> = estimators.iter().map(|e| e.privacy().epsilon()).collect();
    // NonPrivateBaseline is the only estimator without an ε.
    assert_eq!(epsilons.iter().filter(|e| e.is_none()).count(), 1);
    for (est, eps) in estimators.iter().zip(&epsilons) {
        if let Some(eps) = eps {
            assert_eq!(*eps, 0.5, "{} must advertise the configured ε", est.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invalid_epsilon_yields_typed_error_not_panic(eps in -10.0f64..0.0) {
        // Covers ε < 0; ε = 0, NaN and ∞ are covered below.
        let err = EstimatorConfig::new(eps).validate().unwrap_err();
        prop_assert_eq!(err, ConfigError::InvalidEpsilon { value: eps });
        prop_assert!(PrivateCcEstimator::new(eps).is_err());
        prop_assert!(PrivateSpanningForestEstimator::new(eps).is_err());
        prop_assert!(EdgeDpBaseline::new(eps).is_err());
        prop_assert!(NaiveNodeDpBaseline::new(eps).is_err());
        prop_assert!(FixedDeltaBaseline::new(eps, 2).is_err());
    }

    #[test]
    fn out_of_range_beta_yields_typed_error(beta in 1.0f64..100.0, below in -10.0f64..=0.0) {
        for bad in [beta, below] {
            let err = EstimatorConfig::new(1.0).with_beta(bad).validate().unwrap_err();
            prop_assert_eq!(err, ConfigError::InvalidBeta { value: bad });
        }
    }

    #[test]
    fn bad_fraction_yields_typed_error(frac in 1.0f64..10.0) {
        let config = EstimatorConfig::new(1.0).with_node_count_fraction(frac);
        prop_assert_eq!(
            config.validate().unwrap_err(),
            ConfigError::InvalidNodeCountFraction { value: frac }
        );
        prop_assert!(PrivateCcEstimator::from_config(config).is_err());
    }

    #[test]
    fn valid_configs_always_build(eps in 0.01f64..50.0, beta in 0.001f64..0.999, delta_max in 1usize..10_000) {
        let config = EstimatorConfig::new(eps).with_beta(beta).with_delta_max(delta_max);
        prop_assert!(config.validate().is_ok());
        prop_assert!(PrivateCcEstimator::from_config(config.clone()).is_ok());
        prop_assert!(PrivateSpanningForestEstimator::from_config(config).is_ok());
    }

    #[test]
    fn privacy_budget_never_overspends(
        total in 0.05f64..20.0,
        requests in proptest::collection::vec(0.01f64..5.0, 1..12),
    ) {
        let mut budget = PrivacyBudget::new(total);
        for (i, &eps) in requests.iter().enumerate() {
            let before = budget.spent_epsilon();
            match budget.spend(&format!("stage-{i}"), eps) {
                Ok(spent) => prop_assert!((spent - eps).abs() < 1e-12),
                Err(BudgetExceeded { requested, remaining }) => {
                    // A rejected request changes nothing and was indeed too big.
                    prop_assert!((budget.spent_epsilon() - before).abs() < 1e-12);
                    prop_assert!(requested > remaining);
                }
            }
            prop_assert!(budget.spent_epsilon() <= total + 1e-9);
            prop_assert!(budget.remaining_epsilon() >= 0.0);
        }
        let ledger_total: f64 = budget.ledger().iter().map(|(_, e)| e).sum();
        prop_assert!((ledger_total - budget.spent_epsilon()).abs() < 1e-9);
    }
}

#[test]
fn degenerate_epsilons_are_rejected_without_panic() {
    for eps in [0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(
            matches!(
                EstimatorConfig::new(eps).validate(),
                Err(ConfigError::InvalidEpsilon { .. })
            ),
            "ε = {eps} must be rejected"
        );
    }
    assert!(matches!(
        EstimatorConfig::new(1.0).with_beta(f64::NAN).validate(),
        Err(ConfigError::InvalidBeta { .. })
    ));
    assert!(matches!(
        EstimatorConfig::new(1.0).with_delta_max(0).validate(),
        Err(ConfigError::InvalidDeltaMax { value: 0 })
    ));
}

#[test]
fn estimator_errors_unify_under_ccdp_error() {
    // A budget failure driven through the public seam surfaces as CcdpError.
    let g = generators::planted_star_forest(5, 2, 0);
    let mut rng = StdRng::seed_from_u64(3);
    let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
    let mut exhausted = PrivacyBudget::new(1.0);
    exhausted.spend("already-spent", 1.0).unwrap();
    let err = est
        .estimate_with_budget(&g, &mut exhausted, &mut rng)
        .unwrap_err();
    assert!(matches!(err, CcdpError::Budget(_)), "{err}");
    assert!(err.to_string().contains("budget"));
}
