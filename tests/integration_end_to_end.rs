//! End-to-end integration tests: generators -> private estimators -> sanity of the
//! released values, across every graph family used by the paper's analysis.
//! Everything is reached through the `ccdp` facade prelude.

use ccdp::prelude::*;

fn mean_abs_error_cc(g: &Graph, epsilon: f64, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let est = PrivateCcEstimator::from_config(EstimatorConfig::new(epsilon)).unwrap();
    let truth = g.num_connected_components() as f64;
    measure_errors(truth, trials, || est.estimate(g, &mut rng).unwrap().value()).mean
}

#[test]
fn erdos_renyi_pipeline() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 800;
    let g = generators::erdos_renyi(n, 1.0 / n as f64, &mut rng);
    let err = mean_abs_error_cc(&g, 1.0, 5, 11);
    let truth = g.num_connected_components() as f64;
    assert!(
        truth > n as f64 / 10.0,
        "expected many components in the subcritical regime"
    );
    assert!(
        err < truth * 0.5,
        "error {err} too large relative to {truth}"
    );
}

#[test]
fn geometric_pipeline() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::random_geometric(600, 0.02, &mut rng);
    // Δ* ≤ 6 for geometric graphs (Section 1.1.4) — a public, data-independent
    // fact, so capping the selection grid is exactly what the config API is
    // for. It also removes the fat tail of rare huge-Δ̂ GEM draws that the
    // default β = 1/ln ln n tolerates.
    let est =
        PrivateCcEstimator::from_config(EstimatorConfig::new(1.0).with_delta_max(16)).unwrap();
    let mut rng2 = StdRng::seed_from_u64(12);
    let truth = g.num_connected_components() as f64;
    let err = (0..5)
        .map(|_| (est.estimate(&g, &mut rng2).unwrap().value() - truth).abs())
        .sum::<f64>()
        / 5.0;
    assert!(
        err < truth * 0.5,
        "error {err} too large relative to {truth}"
    );
}

#[test]
fn planted_star_forest_pipeline() {
    let g = generators::planted_star_forest(100, 3, 50);
    let err = mean_abs_error_cc(&g, 1.0, 10, 13);
    assert!(err < 60.0, "error {err} too large for a Δ* = 3 family");
}

#[test]
fn caveman_pipeline() {
    let g = generators::caveman(20, 5);
    let err = mean_abs_error_cc(&g, 1.0, 5, 14);
    // A connected caveman graph has exactly one component; the estimate should not
    // be wildly off even though the count itself is tiny.
    assert!(err < 80.0);
}

#[test]
fn spanning_forest_estimator_tracks_truth_on_grid() {
    let g = generators::grid(12, 12);
    let mut rng = StdRng::seed_from_u64(15);
    let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
    let truth = g.spanning_forest_size() as f64;
    let mut err = 0.0;
    for _ in 0..5 {
        err += (est.estimate(&g, &mut rng).unwrap().value() - truth).abs();
    }
    err /= 5.0;
    assert!(err < 50.0, "grid spanning-forest error {err} too large");
}

#[test]
fn deterministic_given_a_seed() {
    let g = generators::planted_star_forest(30, 2, 5);
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        PrivateCcEstimator::new(1.0)
            .unwrap()
            .estimate(&g, &mut rng)
            .unwrap()
            .value()
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

#[test]
fn io_round_trip_preserves_private_pipeline_inputs() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::erdos_renyi(60, 0.05, &mut rng);
    let text = io::to_edge_list(&g);
    let parsed = io::from_edge_list(&text).unwrap();
    assert_eq!(
        parsed.num_connected_components(),
        g.num_connected_components()
    );
    assert_eq!(parsed.spanning_forest_size(), g.spanning_forest_size());
}

#[test]
fn estimates_are_finite_and_selected_delta_in_grid() {
    let mut rng = StdRng::seed_from_u64(4);
    let token = DiagnosticsAccess::acknowledge_non_private();
    // The full selection grid (Δmax = n) over both regimes, including
    // supercritical draws (mean degree 3) whose giant component used to send
    // the dense from-scratch cutting-plane solver into minutes-long territory.
    // With the combinatorial backend the whole loop — eight full-grid
    // estimates up to n = 300 — runs in ~0.2 s in release mode.
    for n in [10usize, 50, 200, 300] {
        for mean_degree in [0.9, 3.0] {
            let g = generators::erdos_renyi(n, mean_degree / n as f64, &mut rng);
            let est = PrivateSpanningForestEstimator::new(0.5).unwrap();
            let r = est.estimate(&g, &mut rng).unwrap();
            assert!(r.value().is_finite());
            let selected = r.diagnostics(token).selected_delta.unwrap();
            assert!(selected >= 1 && selected <= n.max(1));
            assert!(selected.is_power_of_two());
        }
    }
}

#[test]
fn supercritical_giant_component_end_to_end() {
    // The workload the LP-performance ROADMAP item was about: a supercritical
    // Erdős–Rényi draw at n = 300 (mean degree 3 ⇒ one giant component
    // holding most vertices), estimated end to end with the default
    // (combinatorial) backend. Release-mode runtime: ~0.1 s for all 5 trials
    // (first trial evaluates the family, the rest replay it from the cache;
    // this used to take minutes per trial with the dense from-scratch
    // simplex).
    let mut rng = StdRng::seed_from_u64(8);
    let n = 300;
    let g = generators::erdos_renyi(n, 3.0 / n as f64, &mut rng);
    let giant = components::component_sizes(&g).into_iter().max().unwrap();
    assert!(
        giant > n / 3,
        "expected a giant component, largest was {giant}"
    );
    let err = mean_abs_error_cc(&g, 1.0, 5, 18);
    let truth = g.num_connected_components() as f64;
    assert!(
        err < truth + 60.0,
        "error {err} too large relative to {truth}"
    );
}
