//! Integration tests for the solver layer and the family cache through the
//! public facade: backend selection via `EstimatorConfig`, cache-correctness
//! (cached and uncached `estimate()` agree exactly) and cache observability.

use ccdp::prelude::*;
use std::sync::Arc;

fn diagnostics(r: &Release) -> &Diagnostics {
    r.diagnostics(DiagnosticsAccess::acknowledge_non_private())
}

#[test]
fn cached_and_uncached_estimates_match_exactly() {
    // The family evaluation is deterministic, so with identical RNG seeds a
    // caching estimator and a cache-disabled estimator must produce the same
    // release value and the same diagnostics — on every repeat.
    let mut rng_a = StdRng::seed_from_u64(21);
    let mut rng_b = StdRng::seed_from_u64(21);
    let mut rng_gen = StdRng::seed_from_u64(5);
    let g = generators::erdos_renyi(60, 2.5 / 60.0, &mut rng_gen);

    let cached = PrivateSpanningForestEstimator::from_config(EstimatorConfig::new(1.0)).unwrap();
    let uncached = PrivateSpanningForestEstimator::from_config(
        EstimatorConfig::new(1.0).with_family_caching(false),
    )
    .unwrap();
    for _ in 0..3 {
        let ra = cached.estimate(&g, &mut rng_a).unwrap();
        let rb = uncached.estimate(&g, &mut rng_b).unwrap();
        assert_eq!(ra.value(), rb.value());
        assert_eq!(diagnostics(&ra), diagnostics(&rb));
    }
    // The caching estimator actually hit its cache after the first call.
    let stats = cached.family_cache().unwrap().stats();
    assert_eq!(stats.misses, 1, "one family evaluation expected");
    assert_eq!(stats.hits, 2, "two replays expected");
}

#[test]
fn shared_cache_serves_a_fleet() {
    let shared = Arc::new(ExtensionCache::default());
    let config = EstimatorConfig::new(1.0).with_shared_family_cache(Arc::clone(&shared));
    let a = PrivateSpanningForestEstimator::from_config(config.clone()).unwrap();
    let b = PrivateSpanningForestEstimator::from_config(config).unwrap();
    let g = generators::caveman(5, 4);
    let mut rng = StdRng::seed_from_u64(31);
    a.estimate(&g, &mut rng).unwrap();
    b.estimate(&g, &mut rng).unwrap();
    let stats = shared.stats();
    assert_eq!(
        (stats.misses, stats.hits),
        (1, 1),
        "second estimator must reuse the first one's family evaluation"
    );
}

#[test]
fn backends_are_selectable_and_agree_through_the_estimator() {
    // Same seed + same (deterministic) family values ⇒ identical releases,
    // whichever exact backend computed the family.
    let mut rng_gen = StdRng::seed_from_u64(9);
    let g = generators::erdos_renyi(80, 3.0 / 80.0, &mut rng_gen);
    let run = |backend: SolverBackend| {
        let est = PrivateSpanningForestEstimator::from_config(
            EstimatorConfig::new(1.0).with_solver(backend),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        est.estimate(&g, &mut rng).unwrap().value()
    };
    let comb = run(SolverBackend::Combinatorial);
    let simp = run(SolverBackend::Simplex);
    assert!(
        (comb - simp).abs() < 1e-6,
        "backends disagreed through the estimator: {comb} vs {simp}"
    );
}

#[test]
fn direct_polytope_api_exposes_both_backends() {
    let g = generators::complete(6);
    let comb = forest_polytope_max(&g, 2.0).unwrap();
    let simp = forest_polytope_max_with(&g, 2.0, SolverBackend::Simplex).unwrap();
    assert!((comb.value - simp.value).abs() < 1e-6);
    assert!((comb.value - 5.0).abs() < 1e-5);
}
