//! Accuracy-envelope integration tests mirroring the paper's guarantees
//! (Theorem 1.3 / Theorem 1.5) with generous empirical slack.

use ccdp::prelude::*;
use forest::delta_star_upper_bound;
use sensitivity::down_sensitivity_fsf;

/// The error bound of Theorem 1.3 with an explicit constant used as an empirical
/// envelope: C · Δ* · ln(ln n) / ε (plus an additive floor for tiny graphs).
fn envelope(delta_star: usize, n: usize, epsilon: f64) -> f64 {
    let lnln = (n.max(3) as f64).ln().ln().max(1.0);
    80.0 * delta_star as f64 * lnln / epsilon + 15.0
}

#[test]
fn error_within_envelope_on_star_forests() {
    for star_size in [1usize, 2, 4, 8] {
        let g = generators::planted_star_forest(200 / (star_size + 1) + 5, star_size, 10);
        let delta_ub = delta_star_upper_bound(&g);
        assert_eq!(delta_ub, star_size.max(1));
        let mut rng = StdRng::seed_from_u64(star_size as u64);
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let truth = g.spanning_forest_size() as f64;
        let stats = measure_errors(truth, 20, || est.estimate(&g, &mut rng).unwrap().value());
        let bound = envelope(delta_ub, g.num_vertices(), 1.0);
        assert!(
            stats.median <= bound,
            "star size {star_size}: median error {} exceeds envelope {}",
            stats.median,
            bound
        );
    }
}

#[test]
fn error_within_down_sensitivity_envelope() {
    // Theorem 1.5: the same envelope with DS + 1 in place of Δ*.
    // Supercritical draws (mean degree 1.5) with giant components included:
    // the combinatorial solver peels the tree-like periphery and hands only
    // the irreducible core to the column-generation/cutting-plane engine,
    // and repeated trials replay the family from the estimator's cache.
    // Release-mode runtime for the whole n ∈ {100, 200, 300} × 20-trial
    // sweep: ~0.02 s (the n = 300 case alone used to take minutes per
    // trial, which is why it was capped at n ≤ 200 before).
    let mut rng = StdRng::seed_from_u64(99);
    for n in [100usize, 200, 300] {
        let g = generators::erdos_renyi(n, 1.5 / n as f64, &mut rng);
        let ds = down_sensitivity_fsf(&g).value();
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let truth = g.spanning_forest_size() as f64;
        let mut rng2 = StdRng::seed_from_u64(n as u64);
        let stats = measure_errors(truth, 20, || est.estimate(&g, &mut rng2).unwrap().value());
        let bound = envelope(ds + 1, n, 1.0);
        assert!(
            stats.median <= bound,
            "n={n}: median {} > envelope {}",
            stats.median,
            bound
        );
    }
}

#[test]
fn error_scales_inversely_with_epsilon() {
    let g = generators::planted_star_forest(120, 2, 0);
    let truth = g.spanning_forest_size() as f64;
    let run = |eps: f64, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let est = PrivateSpanningForestEstimator::new(eps).unwrap();
        measure_errors(truth, 30, || est.estimate(&g, &mut rng).unwrap().value()).mean
    };
    let low = run(0.25, 1);
    let high = run(4.0, 2);
    assert!(
        low > high,
        "error at ε=0.25 ({low}) should exceed error at ε=4 ({high})"
    );
}

#[test]
fn geometric_error_stays_flat_as_n_grows() {
    // Section 1.1.4: Δ* ≤ 6 for geometric graphs, so the error should not grow
    // appreciably with n (we allow a generous factor for noise).
    let mut rng = StdRng::seed_from_u64(5);
    let mut errors = Vec::new();
    for n in [200usize, 800] {
        let radius = 0.5 / (n as f64).sqrt();
        let g = generators::random_geometric(n, radius, &mut rng);
        let est = PrivateSpanningForestEstimator::new(1.0).unwrap();
        let truth = g.spanning_forest_size() as f64;
        let mut rng2 = StdRng::seed_from_u64(1000 + n as u64);
        let stats = measure_errors(truth, 16, || est.estimate(&g, &mut rng2).unwrap().value());
        errors.push(stats.median);
    }
    assert!(
        errors[1] < errors[0] * 10.0 + 60.0,
        "geometric error grew too fast: {errors:?}"
    );
}

#[test]
fn relative_error_vanishes_in_subcritical_erdos_renyi() {
    // Section 1.1.4: relative error Õ(log² n / (ε n)).
    let mut rng = StdRng::seed_from_u64(6);
    let n = 2000;
    let g = generators::erdos_renyi(n, 0.5 / n as f64, &mut rng);
    let truth = g.num_connected_components() as f64;
    let est = PrivateCcEstimator::from_config(EstimatorConfig::new(1.0)).unwrap();
    let mut rng2 = StdRng::seed_from_u64(7);
    let stats = measure_errors(truth, 8, || est.estimate(&g, &mut rng2).unwrap().value());
    assert!(
        stats.relative_to(truth) < 0.1,
        "relative error {} should be well below 10%",
        stats.relative_to(truth)
    );
}
