//! Baseline-comparison integration tests (the experiment E8 story in test form):
//! the paper's algorithm must beat the naive node-DP baseline by a wide margin on
//! fragmented graphs, and the fixed-Δ ablation shows why adaptive selection
//! matters. All estimators run through the unified `Estimator` trait.

use ccdp::prelude::*;

fn mean_error(est: &dyn Estimator, g: &Graph, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth = g.num_connected_components() as f64;
    measure_errors(truth, trials, || est.estimate(g, &mut rng).unwrap().value()).mean
}

fn our_estimator(epsilon: f64) -> PrivateCcEstimator {
    PrivateCcEstimator::from_config(EstimatorConfig::new(epsilon)).unwrap()
}

#[test]
fn ordering_of_estimators_on_a_fragmented_graph() {
    let g = generators::planted_star_forest(150, 2, 50);
    let eps = 1.0;
    let non_private = mean_error(&NonPrivateBaseline, &g, 5, 1);
    let edge = mean_error(&EdgeDpBaseline::new(eps).unwrap(), &g, 30, 2);
    let ours = mean_error(&our_estimator(eps), &g, 20, 3);
    let naive = mean_error(&NaiveNodeDpBaseline::new(eps).unwrap(), &g, 30, 4);

    assert_eq!(non_private, 0.0);
    // Edge-DP answers an easier question and should be the most accurate private baseline.
    assert!(edge < ours, "edge-DP ({edge}) should beat node-DP ({ours})");
    // Our node-private algorithm must beat the naive node-DP approach by a wide margin.
    assert!(
        ours * 5.0 < naive,
        "ours ({ours}) should be far better than naive node-DP ({naive})"
    );
}

#[test]
fn fixed_delta_underestimates_when_guess_is_too_small() {
    let g = generators::planted_star_forest(80, 5, 0);
    // Δ* = 5; guessing 1 produces a systematic bias much larger than our adaptive error.
    let fixed_low = mean_error(&FixedDeltaBaseline::new(1.0, 1).unwrap(), &g, 20, 5);
    let ours = mean_error(&our_estimator(1.0), &g, 20, 6);
    assert!(
        ours < fixed_low,
        "adaptive ({ours}) should beat a too-small fixed Δ ({fixed_low})"
    );
}

#[test]
fn fixed_delta_overpays_when_guess_is_too_large() {
    let g = generators::planted_star_forest(200, 1, 0);
    // Δ* = 1; a fixed Δ = 64 adds ~64x more noise than needed.
    let fixed_high = mean_error(&FixedDeltaBaseline::new(1.0, 64).unwrap(), &g, 40, 7);
    let fixed_right = mean_error(&FixedDeltaBaseline::new(1.0, 1).unwrap(), &g, 40, 8);
    assert!(
        fixed_right * 4.0 < fixed_high,
        "right guess ({fixed_right}) should be much better than oversized guess ({fixed_high})"
    );
}

#[test]
fn naive_node_dp_error_grows_linearly_with_n() {
    let small = generators::planted_star_forest(50, 1, 0);
    let large = generators::planted_star_forest(400, 1, 0);
    let est = NaiveNodeDpBaseline::new(1.0).unwrap();
    let err_small = mean_error(&est, &small, 40, 9);
    let err_large = mean_error(&est, &large, 40, 10);
    let ratio = err_large / err_small;
    let n_ratio = large.num_vertices() as f64 / small.num_vertices() as f64;
    assert!(
        ratio > n_ratio / 3.0,
        "naive error should grow with n (ratio {ratio}, n ratio {n_ratio})"
    );
}

#[test]
fn all_estimators_are_finite_on_edge_cases() {
    let mut rng = StdRng::seed_from_u64(11);
    for g in [
        Graph::new(0),
        Graph::new(1),
        Graph::new(5),
        generators::complete(3),
    ] {
        for est in [
            Box::new(NonPrivateBaseline) as Box<dyn Estimator>,
            Box::new(EdgeDpBaseline::new(1.0).unwrap()),
            Box::new(NaiveNodeDpBaseline::new(1.0).unwrap()),
            Box::new(FixedDeltaBaseline::new(1.0, 2).unwrap()),
            Box::new(our_estimator(1.0)),
            Box::new(PrivateSpanningForestEstimator::new(1.0).unwrap()),
        ] {
            let v = est.estimate(&g, &mut rng).unwrap().value();
            assert!(
                v.is_finite(),
                "{} produced a non-finite estimate",
                est.name()
            );
        }
    }
}
