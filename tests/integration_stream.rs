//! End-to-end integration of the streaming tier with the serving stack:
//! streams publish versioned snapshots, the scheduler re-estimates under
//! budget, and the server answers version-pinned requests from the same
//! registry — all through the `ccdp` facade.

use ccdp::prelude::*;
use ccdp::stream::replay;
use std::sync::Arc;

fn infra(quota: f64) -> (Arc<GraphRegistry>, Arc<BudgetLedger>, Arc<ExtensionCache>) {
    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    ledger.register("tenant", quota).unwrap();
    let cache = Arc::new(ExtensionCache::new(64));
    (registry, ledger, cache)
}

#[test]
fn evolving_fleet_releases_match_their_snapshots() {
    let spec = MutationSpec {
        graphs: 3,
        vertices: 24,
        initial_avg_degree: 1.5,
        mutations_per_graph: 60,
        delete_fraction: 0.3,
        seed: 7,
    };
    let (registry, ledger, cache) = infra(1e6);
    let scheduler = ReleaseScheduler::new(
        SchedulerConfig::new(ReleasePolicy::EveryKMutations(12))
            .with_epsilon(0.5)
            .with_retain_versions(3),
        Arc::clone(&registry),
        ledger,
        Arc::clone(&cache),
    );
    let tenant = TenantId::new("tenant");

    let mut releases = Vec::new();
    for index in 0..spec.graphs {
        let mut stream = spec.stream(index).with_cross_check(true);
        for batch in spec.mutations(index).chunks(6) {
            stream.apply_batch(batch).unwrap();
            if let Some(r) = scheduler.observe(&mut stream, &tenant).unwrap() {
                // Verified at release time, before retention can expire the
                // snapshot: the release names a resolvable version whose
                // from-scratch count matches the incremental one.
                let snapshot = registry.resolve_version(&r.graph, r.version).unwrap();
                assert_eq!(
                    components::num_connected_components(snapshot.as_ref()),
                    r.true_components,
                    "{}@{} diverged",
                    r.graph,
                    r.version
                );
                assert!(r.value.is_finite());
                releases.push(r);
            }
        }
        // Retention keeps histories bounded without unpublishing.
        let id = GraphId::new(spec.graph_id(index));
        assert!(registry.versions(&id).len() <= 3);
        assert!(registry.resolve(&id).is_ok());
    }
    assert!(releases.len() >= spec.graphs * 4, "policy must keep firing");
    // No cross-version cache replay: one miss per release, no hits.
    let stats = cache.stats();
    assert_eq!(stats.misses, releases.len() as u64, "{stats:?}");
    assert_eq!(stats.hits, 0, "{stats:?}");
    assert!(stats.invalidations > 0, "{stats:?}");
}

#[test]
fn server_serves_version_pinned_requests_from_published_snapshots() {
    // A stream publishes versions; a Server over the SAME registry answers
    // both pinned and latest requests about them.
    let (registry, ledger, _cache) = infra(1e6);
    let mut stream = GraphStream::new("live/graph");
    stream.apply(&Mutation::insert(1, 0, 1)).unwrap();
    stream.apply(&Mutation::insert(2, 2, 3)).unwrap();
    let snap0 = stream.snapshot();
    registry
        .insert_version(
            snap0.id().clone(),
            snap0.version(),
            Arc::clone(snap0.graph()),
        )
        .unwrap();
    stream.apply(&Mutation::insert(3, 1, 2)).unwrap();
    let snap1 = stream.snapshot();
    registry
        .insert_version(
            snap1.id().clone(),
            snap1.version(),
            Arc::clone(snap1.graph()),
        )
        .unwrap();

    let server = Server::start(
        ServeConfig::new().with_workers(2).with_seed(5),
        Arc::clone(&registry),
        ledger,
    );
    // Pinned to v0: served exactly from the first snapshot.
    let r0 = server
        .submit(ServeRequest::new("tenant", "live/graph", 0.5).at_version(snap0.version()))
        .unwrap()
        .wait();
    assert_eq!(r0.version, Some(snap0.version()));
    assert!(r0.result.unwrap().value().is_finite());
    // Unpinned: bound to the latest version at execution.
    let r1 = server
        .submit(ServeRequest::new("tenant", "live/graph", 0.5))
        .unwrap()
        .wait();
    assert_eq!(r1.version, Some(snap1.version()));
    // A never-published version is a typed refusal.
    let missing = server
        .submit(ServeRequest::new("tenant", "live/graph", 0.5).at_version(GraphVersion::new(9)))
        .unwrap()
        .wait();
    assert!(matches!(
        missing.result,
        Err(ServeError::UnknownVersion { .. })
    ));
    // The two versions used distinct cache slots even though they share an
    // id: no replay across versions.
    assert_eq!(server.cache_stats().misses, 2);
    server.shutdown();
}

#[test]
fn budget_exhaustion_stops_releases_not_ingestion() {
    // Quota funds exactly 2 releases at ε = 0.5.
    let (registry, ledger, cache) = infra(1.0);
    let scheduler = ReleaseScheduler::new(
        SchedulerConfig::new(ReleasePolicy::OnDemand).with_epsilon(0.5),
        registry,
        Arc::clone(&ledger),
        cache,
    );
    let tenant = TenantId::new("tenant");
    let mut stream = GraphStream::new("metered");
    stream.apply(&Mutation::insert(1, 0, 1)).unwrap();
    scheduler.release_now(&mut stream, &tenant).unwrap();
    stream.apply(&Mutation::insert(2, 1, 2)).unwrap();
    scheduler.release_now(&mut stream, &tenant).unwrap();
    stream.apply(&Mutation::insert(3, 2, 3)).unwrap();
    let err = scheduler.release_now(&mut stream, &tenant).unwrap_err();
    assert!(matches!(
        err,
        StreamError::Serve(ServeError::BudgetExhausted { .. })
    ));
    // Ingestion continues untouched after the refusal.
    stream.apply(&Mutation::insert(4, 3, 4)).unwrap();
    assert_eq!(stream.num_components(), 1);
    assert_eq!(scheduler.releases(), 2);
    // The ledger audit trail names each released snapshot.
    let account = ledger.account_view(&tenant).unwrap();
    assert_eq!(account.grants, 2);
    assert!(account.remaining_epsilon < 1e-9);
}

#[test]
fn archived_feeds_replay_into_identical_snapshots() {
    // Serialize a feed, replay it into a second stream: identical graphs,
    // identical counts, identical snapshot versions.
    let spec = MutationSpec {
        graphs: 1,
        vertices: 16,
        initial_avg_degree: 1.0,
        mutations_per_graph: 50,
        delete_fraction: 0.25,
        seed: 3,
    };
    let script = spec.mutations(0);
    let archived = replay::to_mutation_list(&script);
    let replayed = replay::from_mutation_list(&archived).unwrap();
    assert_eq!(script, replayed);

    let mut live = spec.stream(0);
    let mut restored = spec.stream(0);
    live.apply_batch(&script).unwrap();
    restored.apply_batch(&replayed).unwrap();
    assert_eq!(live.graph(), restored.graph());
    assert_eq!(live.num_components(), restored.num_components());
    let (a, b) = (live.snapshot(), restored.snapshot());
    assert_eq!(a.version(), b.version());
    assert_eq!(a.num_components(), b.num_components());
    assert_eq!(a.graph(), b.graph());
}
