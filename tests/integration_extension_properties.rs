//! Cross-crate property tests for the Lipschitz extension family: the three
//! Definition 3.2 properties, the anchor behaviour (Lemma 3.3 / 1.9) and the
//! ℓ∞-optimality statement (Theorem 1.11) checked against the Lemma A.1
//! comparator on enumerated small graphs.

use ccdp::prelude::*;
use proptest::prelude::*;
use sensitivity::down_sensitivity_fsf;
use subgraph::{all_vertex_subsets, induced_subgraph, remove_vertex};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3..=max_n).prop_flat_map(move |n| {
        let num_pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), num_pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[idx] {
                        g.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn definition_3_2_properties(g in arb_graph(8)) {
        let fsf = g.spanning_forest_size() as f64;
        let mut prev = 0.0f64;
        for delta in 1..=4usize {
            let v = LipschitzExtension::new(delta).evaluate(&g).unwrap();
            // Underestimation.
            prop_assert!(v <= fsf + 1e-6);
            // Monotonicity in Δ.
            prop_assert!(v + 1e-6 >= prev);
            prev = v;
            // Δ-Lipschitz under single-vertex removal.
            for vert in g.vertices() {
                let (h, _) = remove_vertex(&g, vert);
                let hv = LipschitzExtension::new(delta).evaluate(&h).unwrap();
                prop_assert!((v - hv).abs() <= delta as f64 + 1e-6);
            }
        }
    }

    #[test]
    fn lemma_1_9_anchor_containment(g in arb_graph(8)) {
        for delta in 1..=4usize {
            if in_optimal_monotone_anchor_set(&g, delta - 1) {
                prop_assert!(in_anchor_set(&g, delta).unwrap());
            }
        }
    }

    #[test]
    fn polytope_extension_dominates_lemma_a1_extension(g in arb_graph(7)) {
        // Both are Δ-Lipschitz underestimates of f_sf with (nearly) optimal anchor
        // sets; our extension must be at least as large as the Lemma A.1 one on the
        // anchor graphs and never exceed f_sf anywhere.
        for delta in 1..=3usize {
            let ours = LipschitzExtension::new(delta).evaluate(&g).unwrap();
            prop_assert!(ours <= g.spanning_forest_size() as f64 + 1e-6);
            if down_sensitivity_fsf(&g).value() < delta {
                let theirs = downsens_extension_fsf(&g, delta);
                prop_assert!(ours + 1e-6 >= theirs);
            }
        }
    }
}

/// Theorem 1.11 instantiated with the Lemma A.1 extension at parameter Δ−1 as the
/// comparator f* ∈ F_{Δ−1}:
/// `Err_G(f_Δ, f_sf) ≤ 2 · Err_G(f*, f_sf) − 1` whenever the left side is positive.
#[test]
fn theorem_1_11_against_lemma_a1_comparator() {
    let mut rng = StdRng::seed_from_u64(71);
    let mut positive_cases = 0;
    for _ in 0..40 {
        let g = generators::erdos_renyi(6, 0.45, &mut rng);
        for delta in 2..=3usize {
            let err_ours =
                err_over_subgraphs(&g, |h| LipschitzExtension::new(delta).evaluate(h).unwrap());
            if err_ours <= 1e-9 {
                continue;
            }
            positive_cases += 1;
            let err_comparator = err_over_subgraphs(&g, |h| downsens_extension_fsf(h, delta - 1));
            assert!(
                err_ours <= 2.0 * err_comparator - 1.0 + 1e-6,
                "Theorem 1.11 violated: ours {err_ours}, comparator {err_comparator}, Δ={delta}, edges {:?}",
                g.edge_vec()
            );
        }
    }
    assert!(
        positive_cases > 0,
        "the sweep never exercised a graph with positive error"
    );
}

/// Err_G(f, f_sf) = max over induced subgraphs H of |f(H) − f_sf(H)|.
fn err_over_subgraphs<F: Fn(&Graph) -> f64>(g: &Graph, f: F) -> f64 {
    let mut worst = 0.0f64;
    for subset in all_vertex_subsets(g) {
        let (h, _) = induced_subgraph(g, &subset);
        worst = worst.max((f(&h) - h.spanning_forest_size() as f64).abs());
    }
    worst
}

#[test]
fn star_graph_matches_theorem_1_11_base_case() {
    // The (Δ+1)-star is the tight base case of Lemma 5.2 / Theorem 1.11.
    for delta in 1..=4usize {
        let g = generators::star(delta + 1);
        let f = LipschitzExtension::new(delta).evaluate(&g).unwrap();
        assert!((f - delta as f64).abs() < 1e-6);
        let err = err_over_subgraphs(&g, |h| LipschitzExtension::new(delta).evaluate(h).unwrap());
        assert!(
            (err - 1.0).abs() < 1e-6,
            "base-case error should be exactly 1, got {err}"
        );
    }
}

#[test]
fn anchor_threshold_matches_smallest_spanning_forest_degree() {
    let mut rng = StdRng::seed_from_u64(72);
    for _ in 0..10 {
        let g = generators::erdos_renyi(7, 0.3, &mut rng);
        if g.has_no_edges() {
            continue;
        }
        let threshold = smallest_anchor_delta(&g).unwrap();
        let exact = forest::delta_star_exact(&g, 1 << 22).unwrap();
        assert_eq!(threshold, exact);
    }
}
