//! `ccdp` — the ops CLI of the networked serving stack.
//!
//! Thin subcommands over a service layer over the typed [`NetClient`]:
//! the command layer only parses `KEY=VALUE` arguments and formats output,
//! the service layer owns the client and the fleet lifecycle, and every
//! failure is a typed [`CliError`] with a distinct exit code — never a
//! panic, never a stringly-typed guess.
//!
//! ```text
//! ccdp serve    [addr=127.0.0.1:8787] [fleet=smoke|empty] [workers=4]
//!               [queue=256] [seed=0] [max_connections=64] [duration_s=0]
//!               [tracing=on|off]
//! ccdp estimate [addr=..] tenant=alpha graph=fleet/g0 epsilon=0.25 [version=3]
//! ccdp ingest   [addr=..] graph=g (file=edges.txt | edges='0 1\n1 2') [version=0]
//! ccdp stats    [addr=..]
//! ccdp health   [addr=..]
//! ccdp top      [addr=..]
//! ccdp trace    [addr=..] id=<hex trace id>
//! ccdp audit    [addr=..] tenant=alpha [events=20]
//! ccdp slo      [addr=..]
//! ccdp bench    [addr=..] [clients=32] [requests=512] [epsilon=0.25]
//!               [seed=2023] [out=BENCH_net.json] [n=100000] [threads=8]
//! ```
//!
//! `bench` without `addr=` is self-contained: it provisions the smoke fleet,
//! starts a server and listener in-process, drives the wire workload and
//! tears everything down. With `addr=` it drives an already-running
//! `ccdp serve fleet=smoke` (the workload addresses the fleet by its
//! deterministic catalog ids).

use ccdp::net::client::resolve;
use ccdp::net::{NetClient, NetConfig, NetError, NetServer, WireLoadSpec};
use ccdp::serve::{BudgetLedger, GraphRegistry, GraphSpec, ServeConfig, Server};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// The default address `serve` binds and the clients target.
const DEFAULT_ADDR: &str = "127.0.0.1:8787";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome::Done) => ExitCode::SUCCESS,
        Ok(Outcome::Degraded) => ExitCode::from(2),
        Err(e) => {
            eprintln!("ccdp: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: ccdp <serve|estimate|ingest|stats|health|top|trace|audit|slo|bench> [KEY=VALUE]...\n\
  serve     start a listener (fleet=smoke provisions the CI fleet;\n\
            tracing=on records per-request span traces)\n\
  estimate  one private release: tenant= graph= epsilon= [version=]\n\
  ingest    publish an edge list: graph= file=|edges= [version=]\n\
  stats     print the server's counter tree as JSON\n\
  health    readiness probe (exit 0 ready, 2 degraded)\n\
  top       scrape /metrics and print the fleet dashboard (headline\n\
            counters plus the solver phase table)\n\
  trace     render one request's span tree: id=<hex, from X-Ccdp-Trace>\n\
  audit     print a tenant's budget audit trail and the replay verdict:\n\
            tenant= [events=20 caps the event tail]\n\
  slo       print the declared SLOs, every (spec, tenant, window) status\n\
            and the fired-alert history (exit 2 when any triple breaches)\n\
  bench     drive the wire load workload ([out=] writes the report JSON;\n\
            [n=] swaps in one ER graph of that size, [threads=] pins the\n\
            per-request estimator thread budget, [micro=on|off] and\n\
            [dedup=on|off] toggle the fast solve paths)\n\
  common    addr=127.0.0.1:8787";

/// How a successful command ended (drives the exit code).
enum Outcome {
    /// All good: exit 0.
    Done,
    /// `health` answered but not ready: exit 2, distinguishable from a
    /// transport failure (exit 1) by probes.
    Degraded,
}

fn run(args: &[String]) -> Result<Outcome, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("no command given".into()))?;
    match command.as_str() {
        "serve" => cmd_serve(Args::parse(
            rest,
            &[
                "addr",
                "fleet",
                "workers",
                "queue",
                "seed",
                "max_connections",
                "duration_s",
                "tracing",
            ],
        )?),
        "estimate" => cmd_estimate(Args::parse(
            rest,
            &["addr", "tenant", "graph", "epsilon", "version"],
        )?),
        "ingest" => cmd_ingest(Args::parse(
            rest,
            &["addr", "graph", "file", "edges", "version"],
        )?),
        "stats" => cmd_stats(Args::parse(rest, &["addr"])?),
        "health" => cmd_health(Args::parse(rest, &["addr"])?),
        "top" => cmd_top(Args::parse(rest, &["addr"])?),
        "trace" => cmd_trace(Args::parse(rest, &["addr", "id"])?),
        "audit" => cmd_audit(Args::parse(rest, &["addr", "tenant", "events"])?),
        "slo" => cmd_slo(Args::parse(rest, &["addr"])?),
        "bench" => cmd_bench(Args::parse(
            rest,
            &[
                "addr", "clients", "requests", "epsilon", "seed", "out", "n", "threads", "micro",
                "dedup",
            ],
        )?),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Commands: parse keys, call the service, format output.
// ---------------------------------------------------------------------------

fn cmd_serve(args: Args) -> Result<Outcome, CliError> {
    let addr = args.str_or("addr", DEFAULT_ADDR);
    let fleet = args.str_or("fleet", "smoke");
    let duration_s = args.u64_or("duration_s", 0)?;

    let registry = Arc::new(GraphRegistry::new());
    let ledger = Arc::new(BudgetLedger::new());
    let spec = WireLoadSpec::ci_smoke();
    match fleet {
        "smoke" => {
            let ids = spec.provision(&registry, &ledger);
            println!(
                "provisioned smoke fleet: {} graphs, {} tenants",
                ids.len(),
                spec.base.tenants.len()
            );
        }
        "empty" => {}
        other => {
            return Err(CliError::BadArg {
                key: "fleet",
                detail: format!("`{other}` is not one of smoke|empty"),
            })
        }
    }

    let config = ServeConfig::new()
        .with_workers(args.u64_or("workers", 4)? as usize)
        .with_queue_capacity(args.u64_or("queue", 256)? as usize)
        .with_seed(args.u64_or("seed", 0)?)
        .with_tracing(args.toggle_opt("tracing")?.unwrap_or(false));
    let server = Arc::new(Server::start(config, registry, ledger));
    // The stock SLO set: five-nines-ish availability, a generous p99, and
    // the SRE fast/slow burn-rate pair against a 1 h quota horizon.
    for spec in [
        ccdp::obs::SloSpec::new(
            "availability",
            ccdp::obs::SloObjective::Availability {
                min_success_ratio: 0.99,
            },
            60_000_000,
        ),
        ccdp::obs::SloSpec::new(
            "latency-p99",
            ccdp::obs::SloObjective::LatencyP99 {
                max_micros: 2_000_000,
            },
            60_000_000,
        ),
        ccdp::obs::SloSpec::new(
            "budget-burn",
            ccdp::obs::SloObjective::BurnRate {
                horizon_micros: 3_600_000_000,
                max_burn: 14.0,
            },
            60_000_000,
        )
        .with_window(10_000_000),
    ] {
        server.slo().add_spec(spec);
    }
    let net_config = NetConfig::new()
        .with_addr(addr)
        .with_max_connections(args.u64_or("max_connections", 64)? as usize);
    let net = NetServer::start(net_config, Arc::clone(&server)).map_err(|e| CliError::Io {
        detail: format!("cannot bind `{addr}`: {e}"),
    })?;
    println!("serving on {} (fleet={fleet})", net.local_addr());

    if duration_s > 0 {
        std::thread::sleep(Duration::from_secs(duration_s));
        let stats = net.shutdown();
        println!(
            "drained after {duration_s}s: {} connections, {} requests",
            stats.accepted, stats.requests
        );
    } else {
        // Serve until the process is killed; the listener threads do the work.
        loop {
            std::thread::park();
        }
    }
    Ok(Outcome::Done)
}

fn cmd_estimate(args: Args) -> Result<Outcome, CliError> {
    let mut service = OpsService::connect(args.str_or("addr", DEFAULT_ADDR))?;
    let est = service.client.estimate(
        args.require("tenant")?,
        args.require("graph")?,
        args.f64_req("epsilon")?,
        args.u64_opt("version")?,
    )?;
    println!(
        "{} on {}@v{}: {:.3}  (ε={}, estimator={}, server latency {:.2} ms)",
        est.tenant,
        est.graph,
        est.version.map_or_else(|| "?".into(), |v| v.to_string()),
        est.value,
        est.epsilon.map_or_else(|| "-".into(), |e| e.to_string()),
        est.estimator,
        est.latency_ms,
    );
    if let Some(trace) = &est.trace {
        println!("trace: {trace}  (ccdp trace id={trace})");
    }
    Ok(Outcome::Done)
}

fn cmd_ingest(args: Args) -> Result<Outcome, CliError> {
    let edges = match (args.opt("file"), args.opt("edges")) {
        (Some(path), None) => std::fs::read_to_string(path).map_err(|e| CliError::Io {
            detail: format!("cannot read `{path}`: {e}"),
        })?,
        (None, Some(inline)) => inline.replace("\\n", "\n"),
        _ => {
            return Err(CliError::Usage(
                "ingest needs exactly one of file= or edges=".into(),
            ))
        }
    };
    let mut service = OpsService::connect(args.str_or("addr", DEFAULT_ADDR))?;
    let resp = service
        .client
        .ingest(args.require("graph")?, &edges, args.u64_opt("version")?)?;
    println!(
        "published {}@v{}: {} vertices, {} edges",
        resp.graph, resp.version, resp.vertices, resp.edges
    );
    Ok(Outcome::Done)
}

fn cmd_stats(args: Args) -> Result<Outcome, CliError> {
    let mut service = OpsService::connect(args.str_or("addr", DEFAULT_ADDR))?;
    // /stats is already the canonical JSON document; print it verbatim so
    // the output pipes straight into tooling.
    let raw = service.client.get_json("/stats").map(|v| v.to_string());
    match raw {
        Ok(json) => println!("{json}"),
        Err(e) => return Err(e.into()),
    }
    Ok(Outcome::Done)
}

fn cmd_health(args: Args) -> Result<Outcome, CliError> {
    let mut service = OpsService::connect(args.str_or("addr", DEFAULT_ADDR))?;
    let health = service.client.health()?;
    println!(
        "{} (ready={}, accepting={}, draining={}, graphs={})",
        health.status, health.ready, health.accepting, health.draining, health.graphs
    );
    Ok(if health.ready {
        Outcome::Done
    } else {
        Outcome::Degraded
    })
}

fn cmd_top(args: Args) -> Result<Outcome, CliError> {
    let addr = args.str_or("addr", DEFAULT_ADDR);
    let mut service = OpsService::connect(addr)?;
    let series = ccdp::obs::parse_exposition(&service.client.metrics()?);
    // A series name in the exposition may carry labels (`name{k="v"}`);
    // headline numbers sum across them.
    let sum = |name: &str| -> f64 {
        series
            .iter()
            .filter(|(n, _)| n == name || (n.starts_with(name) && n[name.len()..].starts_with('{')))
            .map(|(_, v)| v)
            .sum()
    };
    println!("== ccdp top @ {addr} ==");
    println!(
        "serve    requests={:.0} completed={:.0} failed={:.0} budget_refusals={:.0} queue_depth={:.0} (peak {:.0})",
        sum("ccdp_serve_requests_total"),
        sum("ccdp_serve_completed_total"),
        sum("ccdp_serve_failed_total"),
        sum("ccdp_serve_budget_refusals_total"),
        sum("ccdp_serve_queue_depth"),
        sum("ccdp_serve_queue_depth_peak"),
    );
    let hits = sum("ccdp_core_cache_hits_total");
    let misses = sum("ccdp_core_cache_misses_total");
    let lookups = hits + misses + sum("ccdp_core_cache_coalesced_total");
    println!(
        "cache    hits={hits:.0} misses={misses:.0} coalesced={:.0} entries={:.0} (hit ratio {:.0}%)",
        sum("ccdp_core_cache_coalesced_total"),
        sum("ccdp_core_cache_entries"),
        if lookups > 0.0 { 100.0 * (lookups - misses) / lookups } else { 0.0 },
    );
    println!(
        "budget   charges={:.0} refusals={:.0} epsilon_spent={:.4}",
        sum("ccdp_dp_budget_charges_total"),
        sum("ccdp_dp_budget_refusals_total"),
        sum("ccdp_dp_budget_epsilon_spent_total"),
    );
    println!(
        "net      requests={:.0} 2xx={:.0} 4xx={:.0} 5xx={:.0} refused_cap={:.0}",
        sum("ccdp_net_requests_total"),
        sum("ccdp_net_responses_ok_total"),
        sum("ccdp_net_responses_client_error_total"),
        sum("ccdp_net_responses_server_error_total"),
        sum("ccdp_net_connections_refused_cap_total"),
    );
    let releases = sum("ccdp_stream_releases_total");
    if releases > 0.0 {
        println!("stream   releases={releases:.0}");
    }

    // The solver phase table: seconds and invocations per `phase` label,
    // hottest first.
    let mut phases: Vec<(String, f64, f64)> = Vec::new();
    for (name, seconds) in &series {
        let Some(label) = name
            .strip_prefix("ccdp_exec_phase_seconds_total{phase=\"")
            .and_then(|rest| rest.strip_suffix("\"}"))
        else {
            continue;
        };
        let invocations = sum(&format!(
            "ccdp_exec_phase_invocations_total{{phase=\"{label}\"}}"
        ));
        phases.push((label.to_string(), *seconds, invocations));
    }
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !phases.is_empty() {
        println!("phases   (seconds, invocations):");
        for (name, seconds, invocations) in &phases {
            println!("  {name:<28} {seconds:>10.4} s {invocations:>8.0}");
        }
    }
    Ok(Outcome::Done)
}

fn cmd_trace(args: Args) -> Result<Outcome, CliError> {
    let id = args.require("id")?;
    let mut service = OpsService::connect(args.str_or("addr", DEFAULT_ADDR))?;
    let tree = service.client.trace(id)?;
    let total_ms = tree
        .get("total_nanos")
        .and_then(ccdp::serve::json::JsonValue::as_f64)
        .unwrap_or(0.0)
        / 1e6;
    println!("trace {id}  ({total_ms:.3} ms end to end)");
    fn render(span: &ccdp::serve::json::JsonValue, depth: usize) {
        use ccdp::serve::json::JsonValue;
        let name = span.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        let ms = span
            .get("duration_nanos")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
            / 1e6;
        let detail = span
            .get("detail")
            .and_then(JsonValue::as_str)
            .map(|d| format!("  [{d}]"))
            .unwrap_or_default();
        let indent = "  ".repeat(depth + 1);
        if ms > 0.0 {
            println!("{indent}{name:<30} {ms:>9.3} ms{detail}");
        } else {
            println!("{indent}{name}{detail}");
        }
        if let Some(JsonValue::Array(children)) = span.get("children") {
            for child in children {
                render(child, depth + 1);
            }
        }
    }
    if let Some(ccdp::serve::json::JsonValue::Array(spans)) = tree.get("spans") {
        for span in spans {
            render(span, 0);
        }
    }
    Ok(Outcome::Done)
}

fn cmd_audit(args: Args) -> Result<Outcome, CliError> {
    use ccdp::serve::json::JsonValue;
    let tenant = args.require("tenant")?;
    let tail = args.u64_or("events", 20)? as usize;
    let mut service = OpsService::connect(args.str_or("addr", DEFAULT_ADDR))?;
    let audit = service.client.audit(tenant)?;

    let f = |node: Option<&JsonValue>, key: &str| {
        node.and_then(|n| n.get(key))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
    };
    let account = audit.get("account");
    let replay = audit.get("replay");
    println!(
        "tenant {tenant}: spent {:.4} of {:.4} ε ({:.1}% utilized), {} charges, {} refusals",
        f(account, "spent_epsilon"),
        f(account, "quota_epsilon"),
        100.0 * f(account, "utilization"),
        f(account, "charges") as u64,
        f(account, "refusals") as u64,
    );
    let matches = replay
        .and_then(|r| r.get("matches"))
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let complete = replay
        .and_then(|r| r.get("complete"))
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    println!(
        "replay: spent {:.4} ε over {} charges, {} refusals — {}",
        f(replay, "spent_epsilon"),
        f(replay, "charges") as u64,
        f(replay, "refusals") as u64,
        if matches {
            "matches the live ledger"
        } else if !complete {
            "journal incomplete (ring wrapped); not verifiable"
        } else {
            "MISMATCH vs the live ledger"
        },
    );

    let events = match audit.get("events") {
        Some(JsonValue::Array(events)) => events.as_slice(),
        _ => &[],
    };
    let shown = events.len().min(tail);
    println!("events ({} total, last {shown}):", events.len());
    for event in &events[events.len() - shown..] {
        let get = |key: &str| event.get(key).and_then(JsonValue::as_str).unwrap_or("");
        let seq = event.get("seq").and_then(JsonValue::as_u64).unwrap_or(0);
        let granted = event
            .get("epsilon_granted")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let mut line = format!("  #{seq:<6} {:<18}", get("kind"));
        if !get("graph").is_empty() {
            let version = event
                .get("version")
                .and_then(JsonValue::as_u64)
                .map_or_else(String::new, |v| format!("@v{v}"));
            line.push_str(&format!(" {}{version}", get("graph")));
        }
        if granted != 0.0 {
            line.push_str(&format!(" ε={granted}"));
        }
        if !get("detail").is_empty() {
            line.push_str(&format!("  [{}]", get("detail")));
        }
        println!("{line}");
    }
    Ok(Outcome::Done)
}

fn cmd_slo(args: Args) -> Result<Outcome, CliError> {
    use ccdp::serve::json::JsonValue;
    let mut service = OpsService::connect(args.str_or("addr", DEFAULT_ADDR))?;
    let slo = service.client.slo()?;
    let array = |key: &str| match slo.get(key) {
        Some(JsonValue::Array(items)) => items.clone(),
        _ => Vec::new(),
    };

    let specs = array("specs");
    println!("specs ({}):", specs.len());
    for spec in &specs {
        let windows = match spec.get("windows_micros") {
            Some(JsonValue::Array(w)) => w
                .iter()
                .filter_map(JsonValue::as_f64)
                .map(|w| format!("{:.0}s", w / 1e6))
                .collect::<Vec<_>>()
                .join(","),
            _ => String::new(),
        };
        println!(
            "  {:<16} {:<14} windows={windows}",
            spec.get("name").and_then(JsonValue::as_str).unwrap_or("?"),
            spec.get("objective")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
        );
    }

    let statuses = array("statuses");
    let mut breached = 0usize;
    println!("statuses ({}):", statuses.len());
    for s in &statuses {
        let is_breach = s
            .get("breached")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        breached += is_breach as usize;
        println!(
            "  {:<16} tenant={:<12} window={:>6.0}s measured={:>10.4} threshold={:>10.4} {}",
            s.get("spec").and_then(JsonValue::as_str).unwrap_or("?"),
            s.get("tenant").and_then(JsonValue::as_str).unwrap_or("?"),
            s.get("window_micros")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                / 1e6,
            s.get("measured").and_then(JsonValue::as_f64).unwrap_or(0.0),
            s.get("threshold")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            if is_breach { "BREACHED" } else { "ok" },
        );
    }

    let alerts = array("alerts");
    println!("alerts fired ({}):", alerts.len());
    for a in &alerts {
        println!(
            "  {}",
            a.get("message").and_then(JsonValue::as_str).unwrap_or("?")
        );
    }
    Ok(if breached > 0 {
        Outcome::Degraded
    } else {
        Outcome::Done
    })
}

fn cmd_bench(args: Args) -> Result<Outcome, CliError> {
    let mut spec = WireLoadSpec::ci_smoke();
    spec.base.clients = args.u64_or("clients", spec.base.clients as u64)? as usize;
    spec.base.requests = args.u64_or("requests", spec.base.requests as u64)? as usize;
    spec.base.epsilon_per_request = args.f64_or("epsilon", spec.base.epsilon_per_request)?;
    spec.base.seed = args.u64_or("seed", spec.base.seed)?;
    // `n=` swaps the mixed smoke fleet for one barely-supercritical ER graph
    // of that size — the scale workload the estimator is benchmarked on.
    if args.opt("n").is_some() {
        let n = args.u64_or("n", 0)? as usize;
        if n == 0 {
            return Err(CliError::BadArg {
                key: "n",
                detail: "graph size must be at least 1".into(),
            });
        }
        spec.base.graphs = vec![GraphSpec::ErdosRenyi {
            n,
            avg_degree: 1.05,
            seed: spec.base.seed,
        }];
    }
    // `threads=` pins the per-request estimator thread budget (the released
    // values are identical for every budget; this only changes scheduling).
    if args.opt("threads").is_some() {
        let threads = args.u64_or("threads", 1)? as usize;
        spec.base.server = spec.base.server.clone().with_estimator_threads(threads);
    }
    // `micro=` / `dedup=` toggle the value-neutral fast solve paths for A/B
    // timing; both default to on.
    if let Some(micro) = args.toggle_opt("micro")? {
        spec.base.server = spec.base.server.clone().with_estimator_micro(micro);
    }
    if let Some(dedup) = args.toggle_opt("dedup")? {
        spec.base.server = spec.base.server.clone().with_estimator_dedup(dedup);
    }

    let report = match args.opt("addr") {
        // Drive an already-running fleet.
        Some(addr) => spec.run(resolve(addr)?),
        // Self-contained: provision, serve, drive, tear down.
        None => {
            let registry = Arc::new(GraphRegistry::new());
            let ledger = Arc::new(BudgetLedger::new());
            spec.provision(&registry, &ledger);
            let server = Arc::new(Server::start(
                spec.base.server.clone().with_seed(spec.base.seed),
                registry,
                ledger,
            ));
            let net = NetServer::start(
                NetConfig::new().with_max_connections(spec.base.clients + 8),
                server,
            )
            .map_err(|e| CliError::Io {
                detail: format!("cannot bind a loopback listener: {e}"),
            })?;
            let report = spec.run(net.local_addr());
            net.shutdown();
            report
        }
    };

    let json = report.to_json();
    println!("{json}");
    if let Some(path) = args.opt("out") {
        std::fs::write(path, format!("{json}\n")).map_err(|e| CliError::Io {
            detail: format!("cannot write `{path}`: {e}"),
        })?;
    }
    if report.failed > 0 {
        return Err(CliError::Bench {
            failed: report.failed,
        });
    }
    Ok(Outcome::Done)
}

// ---------------------------------------------------------------------------
// Service layer: owns the typed client.
// ---------------------------------------------------------------------------

/// The connection a command operates through.
struct OpsService {
    client: NetClient,
}

impl OpsService {
    fn connect(addr: &str) -> Result<Self, CliError> {
        Ok(OpsService {
            client: NetClient::connect(resolve(addr)?),
        })
    }
}

// ---------------------------------------------------------------------------
// KEY=VALUE argument parsing with typed errors.
// ---------------------------------------------------------------------------

/// Parsed `KEY=VALUE` arguments, validated against the command's key set.
struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    fn parse(raw: &[String], allowed: &[&str]) -> Result<Self, CliError> {
        let mut values = BTreeMap::new();
        for arg in raw {
            let (key, value) = arg
                .split_once('=')
                .ok_or_else(|| CliError::Usage(format!("`{arg}` is not KEY=VALUE")))?;
            if !allowed.contains(&key) {
                return Err(CliError::Usage(format!(
                    "unknown key `{key}` (allowed: {})",
                    allowed.join(", ")
                )));
            }
            if values.insert(key.to_string(), value.to_string()).is_some() {
                return Err(CliError::Usage(format!("`{key}` given twice")));
            }
        }
        Ok(Args { values })
    }

    fn opt(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.opt(key).unwrap_or(default)
    }

    fn require(&self, key: &'static str) -> Result<&str, CliError> {
        self.opt(key).ok_or(CliError::Missing { key })
    }

    fn u64_opt(&self, key: &'static str) -> Result<Option<u64>, CliError> {
        self.opt(key)
            .map(|v| {
                v.parse().map_err(|_| CliError::BadArg {
                    key,
                    detail: format!("`{v}` is not a non-negative integer"),
                })
            })
            .transpose()
    }

    fn u64_or(&self, key: &'static str, default: u64) -> Result<u64, CliError> {
        Ok(self.u64_opt(key)?.unwrap_or(default))
    }

    fn f64_or(&self, key: &'static str, default: f64) -> Result<f64, CliError> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadArg {
                key,
                detail: format!("`{v}` is not a number"),
            }),
        }
    }

    fn f64_req(&self, key: &'static str) -> Result<f64, CliError> {
        self.require(key)?;
        self.f64_or(key, f64::NAN)
    }

    /// `on|off` (also `true|false`, `1|0`) toggles; `None` when absent.
    fn toggle_opt(&self, key: &'static str) -> Result<Option<bool>, CliError> {
        match self.opt(key) {
            None => Ok(None),
            Some("on") | Some("true") | Some("1") => Ok(Some(true)),
            Some("off") | Some("false") | Some("0") => Ok(Some(false)),
            Some(v) => Err(CliError::BadArg {
                key,
                detail: format!("`{v}` is not on|off"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// The typed failure surface of the CLI.
// ---------------------------------------------------------------------------

/// Everything that can go wrong, each with a readable message (and the
/// server's stable error code passed through on API refusals).
#[derive(Debug)]
enum CliError {
    /// The command line itself is malformed.
    Usage(String),
    /// A required key is missing.
    Missing { key: &'static str },
    /// A key has an unusable value.
    BadArg { key: &'static str, detail: String },
    /// A local I/O failure (file read, bind).
    Io { detail: String },
    /// The wire tier failed or the server refused (typed pass-through).
    Net(NetError),
    /// The bench workload saw failed requests.
    Bench { failed: u64 },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Missing { key } => write!(f, "missing required `{key}=`"),
            CliError::BadArg { key, detail } => write!(f, "bad `{key}=`: {detail}"),
            CliError::Io { detail } => write!(f, "{detail}"),
            CliError::Net(e) => write!(f, "{e}"),
            CliError::Bench { failed } => write!(f, "bench saw {failed} failed requests"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<NetError> for CliError {
    fn from(e: NetError) -> Self {
        CliError::Net(e)
    }
}
