//! `ccdp` — the facade crate for node-differentially private estimation of the
//! number of connected components (Kalemaj–Raskhodnikova–Smith–Tsourakakis,
//! PODS 2023).
//!
//! Applications depend on this one crate and program against one coherent API:
//!
//! * [`Estimator`] — the object-safe trait implemented by the paper's private
//!   estimators **and** every baseline, so heterogeneous estimators can be
//!   served as `Box<dyn Estimator>`.
//! * [`Release`] — the type-safe output: the differentially private
//!   [`Release::value`] is the default surface; non-private [`Diagnostics`]
//!   require an explicit [`DiagnosticsAccess`] token.
//! * [`EstimatorConfig`] — the validating builder shared by all estimators,
//!   returning typed [`ConfigError`]s instead of panicking.
//! * [`CcdpError`] — the unified error type every estimator returns.
//!
//! # Quick start
//!
//! ```
//! use ccdp::prelude::*;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::planted_star_forest(30, 3, 10); // 40 components
//!
//! let estimator = PrivateCcEstimator::from_config(EstimatorConfig::new(1.0))?;
//! let release = estimator.estimate(&g, &mut rng)?;
//! println!("{release}"); // prints the private value, never the diagnostics
//! assert!((release.value() - g.num_connected_components() as f64).abs() < 60.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! A serving loop over heterogeneous estimators:
//!
//! ```
//! use ccdp::prelude::*;
//!
//! let fleet: Vec<Box<dyn Estimator>> = vec![
//!     Box::new(PrivateCcEstimator::new(1.0)?),
//!     Box::new(EdgeDpBaseline::new(1.0)?),
//!     Box::new(NonPrivateBaseline),
//! ];
//! let g = generators::planted_star_forest(10, 2, 0);
//! let mut rng = StdRng::seed_from_u64(1);
//! for est in &fleet {
//!     let r = est.estimate(&g, &mut rng)?;
//!     println!("{:>24} [{}]: {:.1}", est.name(), est.privacy(), r.value());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// The layer crates, re-exported whole for advanced use.
pub use ccdp_core as core;
pub use ccdp_dp as dp;
pub use ccdp_graph as graph;
pub use ccdp_net as net;
pub use ccdp_obs as obs;
pub use ccdp_serve as serve;
pub use ccdp_stream as stream;

// The curated public API at the crate root.
pub use ccdp_core::{
    measure_errors, CacheStats, CcdpError, ConfigError, CoreError, Diagnostics, DiagnosticsAccess,
    EdgeDpBaseline, ErrorStats, Estimator, EstimatorConfig, EvaluationPath, ExtensionCache,
    ExtensionEvaluation, FamilyOptions, FixedDeltaBaseline, LipschitzExtension,
    NaiveNodeDpBaseline, NonPrivateBaseline, Privacy, PrivateCcEstimator,
    PrivateSpanningForestEstimator, Release, SolverBackend,
};
pub use ccdp_dp::{BudgetExceeded, PrivacyBudget};
pub use ccdp_exec::{PhaseProfiler, PhaseReport};
pub use ccdp_graph::{CsrGraph, Graph, GraphVersion};
pub use ccdp_obs::{
    replay_tenant, AuditEvent, AuditJournal, AuditKind, BudgetReplay, MetricsRegistry,
    MetricsSnapshot, SloAlert, SloEngine, SloObjective, SloObservation, SloSpec, SloStatus,
    SpanKind, TraceCtx, TraceId, TraceTree, Tracer,
};

/// Everything an application needs in one import: the estimator API, the graph
/// layer (including its submodules for generators, I/O, sensitivities, …) and
/// the seeded RNG plumbing.
pub mod prelude {
    pub use ccdp_core::{
        downsens_extension_fsf, in_anchor_set, in_optimal_monotone_anchor_set,
        smallest_anchor_delta,
    };
    pub use ccdp_core::{
        evaluate_family, evaluate_family_csr, evaluate_family_csr_with, evaluate_family_tuned,
        evaluate_family_with, forest_polytope_max, forest_polytope_max_with, measure_errors,
        CacheStats, CcdpError, ConfigError, CoreError, Diagnostics, DiagnosticsAccess,
        EdgeDpBaseline, ErrorStats, Estimator, EstimatorConfig, EvaluationPath, ExtensionCache,
        FamilyOptions, FixedDeltaBaseline, LipschitzExtension, NaiveNodeDpBaseline,
        NonPrivateBaseline, Privacy, PrivateCcEstimator, PrivateSpanningForestEstimator, Release,
        SolverBackend,
    };
    pub use ccdp_dp::{BudgetExceeded, PrivacyBudget};
    pub use ccdp_exec::{PhaseProfiler, PhaseReport};
    pub use ccdp_graph::{
        components, forest, generators, io, sensitivity, stars, subgraph, CsrGraph, Graph,
        GraphVersion,
    };
    pub use ccdp_net::{
        NetClient, NetConfig, NetError, NetServer, NetStatsSnapshot, WireLoadReport, WireLoadSpec,
    };
    pub use ccdp_obs::{
        replay_tenant, AuditEvent, AuditJournal, AuditKind, BudgetReplay, Counter, FloatCounter,
        Gauge, MetricsRegistry, MetricsSnapshot, SloAlert, SloEngine, SloObjective, SloObservation,
        SloSpec, SloStatus, SpanKind, TraceCtx, TraceId, TraceTree, Tracer,
    };
    pub use ccdp_serve::{
        BudgetLedger, GraphId, GraphRegistry, LoadReport, LoadSpec, PendingResponse, ServeConfig,
        ServeError, ServeRequest, ServeResponse, Server, StatsSnapshot, TenantAuditSnapshot,
        TenantId,
    };
    pub use ccdp_stream::{
        EdgeOp, GraphSnapshot, GraphStream, Mutation, MutationSpec, ReleasePolicy, ReleaseRecord,
        ReleaseScheduler, ReleaseTrigger, SchedulerConfig, StreamError, StreamStats,
    };
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_prelude_is_self_sufficient() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::planted_star_forest(12, 2, 4);
        let est = PrivateCcEstimator::from_config(EstimatorConfig::new(1.0)).unwrap();
        let release = est.estimate(&g, &mut rng).unwrap();
        assert!(release.value().is_finite());
        assert_eq!(release.privacy(), Privacy::NodeDp { epsilon: 1.0 });
    }
}
